package features

import (
	"testing"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

func s(lat float64, lvl cache.Level, src, home topology.NodeID) pebs.Sample {
	return pebs.Sample{Latency: lat, Level: lvl, SrcNode: src, HomeNode: home}
}

func TestLabelString(t *testing.T) {
	if Good.String() != "good" || RMC.String() != "rmc" {
		t.Error("label names wrong")
	}
	if Label(5).String() != "Label(5)" {
		t.Error("unknown label rendering wrong")
	}
}

func TestExtractBasic(t *testing.T) {
	ch := topology.Channel{Src: 0, Dst: 1}
	samples := []pebs.Sample{
		s(600, cache.MEM, 0, 1), // remote on channel
		s(400, cache.MEM, 0, 1), // remote on channel
		s(220, cache.MEM, 0, 0), // local
		s(4, cache.L1, 0, 0),    // cache hit
		s(130, cache.LFB, 0, 1), // LFB
		s(900, cache.MEM, 2, 1), // different source socket: excluded
	}
	v := Extract(samples, ch, 1)
	if v[5] != 2 {
		t.Errorf("feature 6 (remote count) = %g, want 2", v[5])
	}
	if v[6] != 500 {
		t.Errorf("feature 7 (avg remote latency) = %g, want 500", v[6])
	}
	if v[7] != 1 || v[8] != 220 {
		t.Errorf("local features = %g/%g, want 1/220", v[7], v[8])
	}
	if v[9] != 5 {
		t.Errorf("feature 10 (total) = %g, want 5 (socket-0 batch)", v[9])
	}
	if v[11] != 1 || v[12] != 130 {
		t.Errorf("LFB features = %g/%g", v[11], v[12])
	}
	// Ratios over the 5-sample batch: above 500 = 1 sample (600).
	if v[1] != 0.2 {
		t.Errorf("ratio above 500 = %g, want 0.2", v[1])
	}
	// above 100: 600,400,220,130 = 4/5
	if v[3] != 0.8 {
		t.Errorf("ratio above 100 = %g, want 0.8", v[3])
	}
	if v[0] != 0 {
		t.Errorf("ratio above 1000 = %g, want 0", v[0])
	}
}

func TestExtractWeightScalesCounts(t *testing.T) {
	ch := topology.Channel{Src: 0, Dst: 1}
	samples := []pebs.Sample{s(600, cache.MEM, 0, 1), s(30, cache.L1, 0, 0)}
	v := Extract(samples, ch, 10)
	if v[5] != 10 {
		t.Errorf("weighted remote count = %g, want 10", v[5])
	}
	if v[9] != 20 {
		t.Errorf("weighted total = %g, want 20", v[9])
	}
	// Latency averages must NOT be scaled.
	if v[6] != 600 {
		t.Errorf("avg latency scaled by weight: %g", v[6])
	}
}

func TestExtractEmptyBatch(t *testing.T) {
	v := Extract(nil, topology.Channel{Src: 0, Dst: 1}, 1)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("feature %d = %g on empty batch", i, x)
		}
	}
	// Samples from other sockets only.
	v = Extract([]pebs.Sample{s(100, cache.MEM, 2, 1)}, topology.Channel{Src: 0, Dst: 1}, 1)
	if v[9] != 0 {
		t.Error("foreign-socket samples leaked into batch")
	}
}

func TestChannelVectors(t *testing.T) {
	m := topology.Uniform(2, 2)
	samples := []pebs.Sample{
		s(600, cache.MEM, 0, 1),
		s(620, cache.MEM, 0, 1),
		s(580, cache.MEM, 0, 1),
		s(300, cache.MEM, 1, 0),
	}
	got := ChannelVectors(m, samples, 1, 2)
	if len(got) != 1 {
		t.Fatalf("got %d channels, want 1 (0->1 only; 1->0 has 1 sample < min 2)", len(got))
	}
	v, ok := got[topology.Channel{Src: 0, Dst: 1}]
	if !ok {
		t.Fatal("channel 0->1 missing")
	}
	if v[5] != 3 {
		t.Errorf("remote count = %g", v[5])
	}
}

func TestCandidatesKeys(t *testing.T) {
	samples := []pebs.Sample{
		s(600, cache.MEM, 0, 1),
		s(4, cache.L1, 0, 0),
		s(12, cache.L2, 0, 0),
		s(40, cache.L3, 0, 0),
		s(130, cache.LFB, 0, 1),
		s(210, cache.MEM, 0, 0),
	}
	c := Candidates(samples, 1)
	checks := map[string]float64{
		"num_l1_hit":      1,
		"num_l2_hit":      1,
		"num_l3_hit":      1,
		"num_lfb":         1,
		"num_dram":        2,
		"num_remote_dram": 1,
		"num_local_dram":  1,
		"num_l3_miss":     3,
		"total_samples":   6,
	}
	for k, want := range checks {
		if c[k] != want {
			t.Errorf("%s = %g, want %g", k, c[k], want)
		}
	}
	if c["avg_latency_remote_dram"] != 600 {
		t.Errorf("avg remote = %g", c["avg_latency_remote_dram"])
	}
	if c["avg_latency_local_dram"] != 210 {
		t.Errorf("avg local = %g", c["avg_latency_local_dram"])
	}
	if c["num_cpus"] != 1 || c["num_nodes"] != 1 {
		t.Errorf("identification stats wrong: %v", c)
	}
	if len(Candidates(nil, 1)) != 0 {
		t.Error("empty batch should produce empty candidates")
	}
}

func TestSelectRelevantKeepsDiscriminative(t *testing.T) {
	// Build three mini-programs where "signal" separates the classes and
	// "noise" does not.
	var runs []LabeledCandidates
	for _, prog := range []string{"sumv", "dotv", "countv"} {
		for i := 0; i < 6; i++ {
			runs = append(runs, LabeledCandidates{
				Program: prog, Mode: Good,
				Values: map[string]float64{
					"signal": 10 + float64(i%3),
					"noise":  50 + float64(i*7%13),
				},
			})
			runs = append(runs, LabeledCandidates{
				Program: prog, Mode: RMC,
				Values: map[string]float64{
					"signal": 100 + float64(i%3),
					"noise":  50 + float64((i*5+3)%13),
				},
			})
		}
	}
	kept := SelectRelevant(runs, 0.8)
	found := map[string]bool{}
	for _, k := range kept {
		found[k] = true
	}
	if !found["signal"] {
		t.Errorf("discriminative feature dropped: kept=%v", kept)
	}
	if found["noise"] {
		t.Errorf("noise feature kept: kept=%v", kept)
	}
}

func TestSelectRelevantNeedsBothClasses(t *testing.T) {
	// A program with only good runs (like bandit) cannot vote.
	runs := []LabeledCandidates{
		{Program: "bandit", Mode: Good, Values: map[string]float64{"x": 1}},
		{Program: "bandit", Mode: Good, Values: map[string]float64{"x": 100}},
	}
	if kept := SelectRelevant(runs, 0.8); len(kept) != 0 {
		t.Errorf("selection from single-class data kept %v", kept)
	}
}

func TestSelectRelevantConstantFeature(t *testing.T) {
	var runs []LabeledCandidates
	for i := 0; i < 4; i++ {
		runs = append(runs,
			LabeledCandidates{Program: "p", Mode: Good, Values: map[string]float64{"const_diff": 1}},
			LabeledCandidates{Program: "p", Mode: RMC, Values: map[string]float64{"const_diff": 2}},
		)
	}
	kept := SelectRelevant(runs, 0.8)
	if len(kept) != 1 || kept[0] != "const_diff" {
		t.Errorf("zero-variance but different means should be kept: %v", kept)
	}
}

func TestNamesComplete(t *testing.T) {
	for i, n := range Names {
		if n == "" {
			t.Errorf("feature %d unnamed", i)
		}
	}
}
