package features

import (
	"math/rand"
	"testing"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// randomSamples builds a mixed-channel sample stream over a 4-node machine.
func randomSamples(n int, seed int64) []pebs.Sample {
	rng := rand.New(rand.NewSource(seed))
	levels := []cache.Level{cache.L1, cache.L2, cache.L3, cache.LFB, cache.MEM}
	out := make([]pebs.Sample, n)
	for i := range out {
		out[i] = pebs.Sample{
			Time:     float64(i * 100),
			Latency:  float64(rng.Intn(12000)) / 10,
			Level:    levels[rng.Intn(len(levels))],
			Write:    rng.Intn(4) == 0,
			SrcNode:  topology.NodeID(rng.Intn(4)),
			HomeNode: topology.NodeID(rng.Intn(4)),
		}
	}
	return out
}

// TestAccumulatorChunkedMatchesBatch pins the streaming contract: feeding
// the trace in chunks of any size yields bit-identical vectors to one
// ChannelVectors pass over the whole slice.
func TestAccumulatorChunkedMatchesBatch(t *testing.T) {
	m := topology.Uniform(4, 2)
	samples := randomSamples(5000, 1)
	want := ChannelVectors(m, samples, 3.5, 10)

	for _, chunk := range []int{1, 7, 64, 1024, len(samples)} {
		acc := NewAccumulator(m)
		for start := 0; start < len(samples); start += chunk {
			end := start + chunk
			if end > len(samples) {
				end = len(samples)
			}
			acc.Add(samples[start:end])
		}
		got := acc.Vectors(3.5, 10)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d channels, want %d", chunk, len(got), len(want))
		}
		for ch, wv := range want {
			gv, ok := got[ch]
			if !ok {
				t.Fatalf("chunk %d: channel %v missing", chunk, ch)
			}
			if gv != wv {
				t.Fatalf("chunk %d: channel %v vectors differ:\n got %v\nwant %v", chunk, ch, gv, wv)
			}
		}
	}
}

// TestAccumulatorReset pins that a reused accumulator behaves like a fresh
// one.
func TestAccumulatorReset(t *testing.T) {
	m := topology.Uniform(4, 2)
	first := randomSamples(2000, 2)
	second := randomSamples(3000, 3)

	acc := NewAccumulator(m)
	acc.Add(first)
	acc.Reset()
	acc.Add(second)
	got := acc.Vectors(2, 10)
	want := ChannelVectors(m, second, 2, 10)
	if len(got) != len(want) {
		t.Fatalf("%d channels after reset, want %d", len(got), len(want))
	}
	for ch, wv := range want {
		if got[ch] != wv {
			t.Fatalf("channel %v differs after reset", ch)
		}
	}
	if acc.SampleCount() != float64(len(second)) {
		t.Fatalf("SampleCount = %g, want %d", acc.SampleCount(), len(second))
	}
}
