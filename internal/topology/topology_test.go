package topology

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	base := Config{
		Nodes: 2, CoresPerNode: 4, ThreadsPerCore: 1,
		LocalBW: 16, RemoteBW: 4,
		Latencies: Latencies{L1: 4, L2: 12, L3: 40, LocalDRAM: 200, RemoteDRAM: 300},
		LineSize:  64, PageSize: 4096, HugePageSize: 2 << 20,
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"negative cores", func(c *Config) { c.CoresPerNode = -1 }},
		{"bad threads per core", func(c *Config) { c.ThreadsPerCore = 3 }},
		{"zero local bw", func(c *Config) { c.LocalBW = 0 }},
		{"zero remote bw", func(c *Config) { c.RemoteBW = 0 }},
		{"line size not power of two", func(c *Config) { c.LineSize = 48 }},
		{"page not multiple of line", func(c *Config) { c.PageSize = 1000 }},
		{"huge page not multiple of page", func(c *Config) { c.HugePageSize = 4096 + 1 }},
		{"non-monotone latency", func(c *Config) { c.Latencies.RemoteDRAM = 100 }},
		{"zero L1 latency", func(c *Config) { c.Latencies.L1 = 0 }},
		{"nonpositive override", func(c *Config) {
			c.RemoteBWOverride = map[Channel]float64{{Src: 0, Dst: 1}: -1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("config %+v accepted, want error", cfg)
			}
		})
	}
}

func TestChannelString(t *testing.T) {
	if got := (Channel{Src: 2, Dst: 2}).String(); got != "N2(local)" {
		t.Errorf("local channel string = %q", got)
	}
	if got := (Channel{Src: 0, Dst: 3}).String(); got != "N0->N3" {
		t.Errorf("remote channel string = %q", got)
	}
	if !(Channel{Src: 1, Dst: 1}).Local() {
		t.Error("N1->N1 should be local")
	}
	if (Channel{Src: 1, Dst: 2}).Local() {
		t.Error("N1->N2 should not be local")
	}
}

func TestXeonPresetGeometry(t *testing.T) {
	m := XeonE5_4650()
	if got, want := m.Nodes(), 4; got != want {
		t.Fatalf("Nodes = %d, want %d", got, want)
	}
	if got, want := m.NumCores(), 32; got != want {
		t.Fatalf("NumCores = %d, want %d", got, want)
	}
	if got, want := m.NumCPUs(), 64; got != want {
		t.Fatalf("NumCPUs = %d, want %d", got, want)
	}
	// Linux-style numbering: CPU 0 and CPU 32 are HT siblings on core 0.
	if m.CoreOfCPU(0) != m.CoreOfCPU(32) {
		t.Errorf("CPU 0 and 32 should share a core, got %d and %d", m.CoreOfCPU(0), m.CoreOfCPU(32))
	}
	if m.NodeOfCPU(0) != 0 || m.NodeOfCPU(8) != 1 || m.NodeOfCPU(31) != 3 {
		t.Errorf("unexpected node mapping: cpu0=%d cpu8=%d cpu31=%d",
			m.NodeOfCPU(0), m.NodeOfCPU(8), m.NodeOfCPU(31))
	}
	if m.NodeOfCPU(40) != 1 {
		t.Errorf("HT sibling cpu40 should be on node 1, got %d", m.NodeOfCPU(40))
	}
}

func TestNodeOfCPUOutOfRange(t *testing.T) {
	m := Uniform(2, 2)
	if m.NodeOfCPU(-1) != InvalidNode {
		t.Error("negative CPU should map to InvalidNode")
	}
	if m.NodeOfCPU(CPUID(m.NumCPUs())) != InvalidNode {
		t.Error("CPU beyond range should map to InvalidNode")
	}
	if m.CoreOfCPU(-1) != -1 || m.CoreOfCPU(CPUID(m.NumCPUs())) != -1 {
		t.Error("out-of-range CPU should map to core -1")
	}
}

func TestCPUsOfNodePartition(t *testing.T) {
	m := XeonE5_4650()
	seen := make(map[CPUID]bool)
	for n := 0; n < m.Nodes(); n++ {
		cpus := m.CPUsOfNode(NodeID(n))
		if len(cpus) != 16 {
			t.Fatalf("node %d has %d CPUs, want 16", n, len(cpus))
		}
		for _, c := range cpus {
			if seen[c] {
				t.Fatalf("CPU %d listed on two nodes", c)
			}
			seen[c] = true
			if m.NodeOfCPU(c) != NodeID(n) {
				t.Fatalf("CPU %d maps to node %d, listed under %d", c, m.NodeOfCPU(c), n)
			}
		}
	}
	if len(seen) != m.NumCPUs() {
		t.Fatalf("nodes cover %d CPUs, want %d", len(seen), m.NumCPUs())
	}
}

func TestChannelEnumeration(t *testing.T) {
	m := Uniform(3, 2)
	all := m.Channels()
	if len(all) != 9 {
		t.Fatalf("Channels() = %d entries, want 9", len(all))
	}
	remote := m.RemoteChannels()
	if len(remote) != 6 {
		t.Fatalf("RemoteChannels() = %d entries, want 6", len(remote))
	}
	for _, ch := range remote {
		if ch.Local() {
			t.Errorf("remote enumeration contains local channel %v", ch)
		}
	}
	// Every channel must have a positive bandwidth.
	for _, ch := range all {
		if bw := m.Bandwidth(ch); bw <= 0 {
			t.Errorf("channel %v has bandwidth %g", ch, bw)
		}
	}
}

func TestAsymmetricOverrides(t *testing.T) {
	m := XeonE5_4650()
	fwd := m.Bandwidth(Channel{Src: 0, Dst: 1})
	back := m.Bandwidth(Channel{Src: 1, Dst: 0})
	if fwd == back {
		t.Errorf("expected asymmetric link 0<->1, both %g", fwd)
	}
	local := m.Bandwidth(Channel{Src: 0, Dst: 0})
	if local <= fwd {
		t.Errorf("local bandwidth %g should exceed remote %g", local, fwd)
	}
}

func TestLocalFasterThanRemoteLatency(t *testing.T) {
	for _, m := range []*Machine{XeonE5_4650(), TwoSocket(), Uniform(4, 4)} {
		lat := m.Latencies()
		if lat.LocalDRAM >= lat.RemoteDRAM {
			t.Errorf("%s: local DRAM latency %g >= remote %g", m.Name(), lat.LocalDRAM, lat.RemoteDRAM)
		}
		if lat.L1 >= lat.LocalDRAM {
			t.Errorf("%s: L1 %g >= DRAM %g", m.Name(), lat.L1, lat.LocalDRAM)
		}
	}
}

// Property: for any machine size, NodeOfCPU is consistent with CPUsOfNode.
func TestNodeCPUConsistencyProperty(t *testing.T) {
	f := func(nodes, cores uint8) bool {
		n := int(nodes%4) + 1
		c := int(cores%4) + 1
		m := Uniform(n, c)
		for cpu := 0; cpu < m.NumCPUs(); cpu++ {
			node := m.NodeOfCPU(CPUID(cpu))
			found := false
			for _, x := range m.CPUsOfNode(node) {
				if x == CPUID(cpu) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
