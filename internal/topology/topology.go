// Package topology models the hardware geometry of a NUMA machine: sockets
// (NUMA nodes), cores, hardware threads, memory controllers, and the directed
// interconnect channels between sockets.
//
// DR-BW reasons about bandwidth contention *per directed channel*: a sample
// issued by a core on node S that touches memory resident on node T travels
// the channel S→T (or the local memory controller when S == T). The paper
// stresses that inter-socket links are asymmetric — opposing directions of
// the same physical link can have different usable bandwidth (Lepers et al.,
// USENIX ATC'15) — so channels here are directed and individually sized.
//
// All times are expressed in CPU cycles and all bandwidths in bytes/cycle so
// the simulation is frequency-agnostic. The package provides presets that
// mirror the paper's evaluation platform (a 4-socket Intel Xeon E5-4650).
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a NUMA node (socket). Nodes are numbered 0..N-1.
type NodeID int

// CPUID identifies a hardware thread (what the OS calls a "CPU").
type CPUID int

// CoreID identifies a physical core across the whole machine.
type CoreID int

// InvalidNode is returned by lookups that fail to resolve a node.
const InvalidNode NodeID = -1

// Channel names one directed memory path. Src == Dst denotes the local
// memory-controller path of that node; Src != Dst denotes the inter-socket
// interconnect from the accessing node to the node holding the data.
type Channel struct {
	Src NodeID
	Dst NodeID
}

// Local reports whether the channel is a node's local memory-controller path.
func (c Channel) Local() bool { return c.Src == c.Dst }

// String renders the channel as "N0->N1" or "N2(local)".
func (c Channel) String() string {
	if c.Local() {
		return fmt.Sprintf("N%d(local)", int(c.Src))
	}
	return fmt.Sprintf("N%d->N%d", int(c.Src), int(c.Dst))
}

// Core describes one physical core and its hardware threads.
type Core struct {
	ID   CoreID
	Node NodeID
	// CPUs lists the hardware-thread IDs of this core. With Hyper-Threading
	// there are two entries; without, one.
	CPUs []CPUID
}

// Link holds the usable bandwidth of one directed channel.
type Link struct {
	Channel Channel
	// Bandwidth is the peak usable bandwidth in bytes per CPU cycle.
	Bandwidth float64
}

// Latencies groups the unloaded (zero-queueing) access latencies of the
// memory hierarchy, in cycles. The engine inflates DRAM latencies under load.
type Latencies struct {
	L1        float64 // L1D hit
	L2        float64 // L2 hit
	L3        float64 // L3 (LLC) hit
	LFB       float64 // hit in a line fill buffer (miss already outstanding)
	LocalDRAM float64 // local-node DRAM, unloaded
	// RemoteDRAM is the unloaded latency for a one-hop remote access.
	RemoteDRAM float64
}

// Machine is an immutable description of one NUMA machine.
type Machine struct {
	name      string
	nodes     int
	cores     []Core
	cpuToCore []CoreID
	cpuToNode []NodeID
	links     map[Channel]Link
	bwTable   []float64 // dense bandwidth indexed by ChannelIndex
	lat       Latencies
	lineSize  int
	pageSize  int
	hugePage  int
}

// Config describes a machine to be built by New.
type Config struct {
	Name           string
	Nodes          int     // number of sockets / NUMA nodes
	CoresPerNode   int     // physical cores per socket
	ThreadsPerCore int     // 1, or 2 with Hyper-Threading
	LocalBW        float64 // local memory-controller bandwidth, bytes/cycle
	RemoteBW       float64 // default inter-socket bandwidth, bytes/cycle
	// RemoteBWOverride optionally sets per-channel asymmetric bandwidths.
	RemoteBWOverride map[Channel]float64
	Latencies        Latencies
	LineSize         int // cache-line size in bytes
	PageSize         int // small-page size in bytes
	HugePageSize     int // huge-page size in bytes
}

// New validates cfg and builds the Machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("topology: Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.CoresPerNode <= 0 {
		return nil, fmt.Errorf("topology: CoresPerNode must be positive, got %d", cfg.CoresPerNode)
	}
	if cfg.ThreadsPerCore != 1 && cfg.ThreadsPerCore != 2 {
		return nil, fmt.Errorf("topology: ThreadsPerCore must be 1 or 2, got %d", cfg.ThreadsPerCore)
	}
	if cfg.LocalBW <= 0 || cfg.RemoteBW <= 0 {
		return nil, fmt.Errorf("topology: bandwidths must be positive (local %g, remote %g)", cfg.LocalBW, cfg.RemoteBW)
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("topology: LineSize must be a positive power of two, got %d", cfg.LineSize)
	}
	if cfg.PageSize <= 0 || cfg.PageSize%cfg.LineSize != 0 {
		return nil, fmt.Errorf("topology: PageSize %d must be a positive multiple of LineSize %d", cfg.PageSize, cfg.LineSize)
	}
	if cfg.HugePageSize <= 0 || cfg.HugePageSize%cfg.PageSize != 0 {
		return nil, fmt.Errorf("topology: HugePageSize %d must be a positive multiple of PageSize %d", cfg.HugePageSize, cfg.PageSize)
	}
	lat := cfg.Latencies
	if lat.L1 <= 0 || lat.L2 < lat.L1 || lat.L3 < lat.L2 || lat.LocalDRAM < lat.L3 || lat.RemoteDRAM < lat.LocalDRAM {
		return nil, fmt.Errorf("topology: latencies must be positive and monotone L1<=L2<=L3<=LocalDRAM<=RemoteDRAM, got %+v", lat)
	}
	if lat.LFB <= 0 {
		lat.LFB = (lat.L3 + lat.LocalDRAM) / 2
	}

	m := &Machine{
		name:     cfg.Name,
		nodes:    cfg.Nodes,
		lat:      lat,
		lineSize: cfg.LineSize,
		pageSize: cfg.PageSize,
		hugePage: cfg.HugePageSize,
		links:    make(map[Channel]Link),
	}

	totalCPUs := cfg.Nodes * cfg.CoresPerNode * cfg.ThreadsPerCore
	m.cpuToCore = make([]CoreID, totalCPUs)
	m.cpuToNode = make([]NodeID, totalCPUs)

	// CPU numbering follows the common Linux layout on multi-socket Xeons:
	// the first pass over all physical cores takes CPUs 0..C-1, and the
	// Hyper-Thread siblings take C..2C-1.
	physCores := cfg.Nodes * cfg.CoresPerNode
	m.cores = make([]Core, physCores)
	for c := 0; c < physCores; c++ {
		node := NodeID(c / cfg.CoresPerNode)
		core := Core{ID: CoreID(c), Node: node, CPUs: []CPUID{CPUID(c)}}
		if cfg.ThreadsPerCore == 2 {
			core.CPUs = append(core.CPUs, CPUID(c+physCores))
		}
		m.cores[c] = core
		for _, cpu := range core.CPUs {
			m.cpuToCore[cpu] = core.ID
			m.cpuToNode[cpu] = node
		}
	}

	for s := 0; s < cfg.Nodes; s++ {
		for d := 0; d < cfg.Nodes; d++ {
			ch := Channel{Src: NodeID(s), Dst: NodeID(d)}
			bw := cfg.RemoteBW
			if s == d {
				bw = cfg.LocalBW
			}
			if override, ok := cfg.RemoteBWOverride[ch]; ok {
				if override <= 0 {
					return nil, fmt.Errorf("topology: override bandwidth for %v must be positive, got %g", ch, override)
				}
				bw = override
			}
			m.links[ch] = Link{Channel: ch, Bandwidth: bw}
		}
	}
	m.bwTable = make([]float64, cfg.Nodes*cfg.Nodes)
	for ch, l := range m.links {
		m.bwTable[m.ChannelIndex(ch)] = l.Bandwidth
	}
	return m, nil
}

// Name returns the machine's descriptive name.
func (m *Machine) Name() string { return m.name }

// Nodes returns the number of NUMA nodes.
func (m *Machine) Nodes() int { return m.nodes }

// Cores returns descriptions of all physical cores, ordered by CoreID.
func (m *Machine) Cores() []Core {
	out := make([]Core, len(m.cores))
	copy(out, m.cores)
	return out
}

// NumCPUs returns the total number of hardware threads.
func (m *Machine) NumCPUs() int { return len(m.cpuToNode) }

// NumCores returns the total number of physical cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// NodeOfCPU maps a hardware thread to its NUMA node, or InvalidNode if the
// CPU ID is out of range. This is the lookup DR-BW performs on the CPU ID
// recorded in each PEBS sample to find the sample's source node.
func (m *Machine) NodeOfCPU(cpu CPUID) NodeID {
	if cpu < 0 || int(cpu) >= len(m.cpuToNode) {
		return InvalidNode
	}
	return m.cpuToNode[cpu]
}

// CoreOfCPU maps a hardware thread to its physical core, or -1.
func (m *Machine) CoreOfCPU(cpu CPUID) CoreID {
	if cpu < 0 || int(cpu) >= len(m.cpuToCore) {
		return -1
	}
	return m.cpuToCore[cpu]
}

// CPUsOfNode returns the hardware threads of one node in ascending order.
func (m *Machine) CPUsOfNode(node NodeID) []CPUID {
	var out []CPUID
	for cpu, n := range m.cpuToNode {
		if n == node {
			out = append(out, CPUID(cpu))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Link returns the directed link description for ch.
func (m *Machine) Link(ch Channel) (Link, bool) {
	l, ok := m.links[ch]
	return l, ok
}

// Bandwidth returns the usable bandwidth of ch in bytes/cycle, or 0 if the
// channel does not exist on this machine.
func (m *Machine) Bandwidth(ch Channel) float64 {
	return m.links[ch].Bandwidth
}

// NumChannels returns the number of directed channels (Nodes², counting each
// node's local memory-controller path). Dense per-channel state in hot loops
// is sized by this and indexed by ChannelIndex.
func (m *Machine) NumChannels() int { return m.nodes * m.nodes }

// ChannelIndex maps a directed channel to its dense index src*Nodes+dst, the
// layout every flat per-channel table in the simulator shares.
func (m *Machine) ChannelIndex(ch Channel) int {
	return int(ch.Src)*m.nodes + int(ch.Dst)
}

// ChannelAt is the inverse of ChannelIndex.
func (m *Machine) ChannelAt(ci int) Channel {
	return Channel{Src: NodeID(ci / m.nodes), Dst: NodeID(ci % m.nodes)}
}

// BandwidthTable returns a copy of the dense bandwidth table indexed by
// ChannelIndex, in bytes/cycle. Hot loops fetch this once and index it
// instead of paying the map lookup of Bandwidth per access.
func (m *Machine) BandwidthTable() []float64 {
	out := make([]float64, len(m.bwTable))
	copy(out, m.bwTable)
	return out
}

// CPUNodeTable returns a copy of the flat CPU→node table (indexed by CPUID).
// Hot loops resolve topology once through this instead of calling NodeOfCPU
// per access.
func (m *Machine) CPUNodeTable() []NodeID {
	out := make([]NodeID, len(m.cpuToNode))
	copy(out, m.cpuToNode)
	return out
}

// CPUCoreTable returns a copy of the flat CPU→core table (indexed by CPUID).
func (m *Machine) CPUCoreTable() []CoreID {
	out := make([]CoreID, len(m.cpuToCore))
	copy(out, m.cpuToCore)
	return out
}

// Channels enumerates every directed channel (including each node's local
// path) in deterministic order: by source node, then destination node.
func (m *Machine) Channels() []Channel {
	out := make([]Channel, 0, m.nodes*m.nodes)
	for s := 0; s < m.nodes; s++ {
		for d := 0; d < m.nodes; d++ {
			out = append(out, Channel{Src: NodeID(s), Dst: NodeID(d)})
		}
	}
	return out
}

// RemoteChannels enumerates the inter-socket channels only.
func (m *Machine) RemoteChannels() []Channel {
	out := make([]Channel, 0, m.nodes*(m.nodes-1))
	for _, ch := range m.Channels() {
		if !ch.Local() {
			out = append(out, ch)
		}
	}
	return out
}

// Latencies returns the unloaded hierarchy latencies.
func (m *Machine) Latencies() Latencies { return m.lat }

// LineSize returns the cache-line size in bytes.
func (m *Machine) LineSize() int { return m.lineSize }

// PageSize returns the small-page size in bytes.
func (m *Machine) PageSize() int { return m.pageSize }

// HugePageSize returns the huge-page size in bytes.
func (m *Machine) HugePageSize() int { return m.hugePage }
