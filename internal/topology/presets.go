package topology

// Presets mirror machines the paper and its related work describe. The
// numbers below are expressed in cycles and bytes/cycle at the nominal core
// frequency of each machine; they are representative of published
// measurements, not of any one physical box.

// XeonE5_4650 models the paper's evaluation platform: a 4-socket Intel Xeon
// E5-4650 (Sandy Bridge EP) at 2.7 GHz, 8 cores per socket with
// Hyper-Threading (64 hardware threads total), 20 MB shared L3 per socket,
// and 64 GB of DRAM per socket. Sockets are fully connected by QPI links.
//
// Approximate figures behind the bytes/cycle numbers at 2.7 GHz:
//   - local controller: ~40 GB/s  -> 14.8 B/cycle
//   - QPI 8.0 GT/s link: ~12.8 GB/s usable per direction -> 4.7 B/cycle
//
// Lepers et al. report directional asymmetry on such interconnects; the
// preset degrades a few directions to ~80% to reproduce that observable.
func XeonE5_4650() *Machine {
	m, err := New(Config{
		Name:           "Intel Xeon E5-4650, 4 sockets, 2.7 GHz",
		Nodes:          4,
		CoresPerNode:   8,
		ThreadsPerCore: 2,
		LocalBW:        14.8,
		RemoteBW:       4.7,
		RemoteBWOverride: map[Channel]float64{
			{Src: 1, Dst: 0}: 3.8, // asymmetric return paths
			{Src: 3, Dst: 2}: 3.8,
			{Src: 2, Dst: 1}: 4.2,
		},
		Latencies: Latencies{
			L1:         4,
			L2:         12,
			L3:         38,
			LFB:        120,
			LocalDRAM:  230,
			RemoteDRAM: 360,
		},
		LineSize:     64,
		PageSize:     4096,
		HugePageSize: 2 << 20,
	})
	if err != nil {
		panic("topology: invalid XeonE5_4650 preset: " + err.Error())
	}
	return m
}

// Opteron6276 models a 4-socket AMD Opteron 6276 (Bulldozer/Interlagos) at
// 2.3 GHz — the AMD platform class the paper names for future work (its
// IBS-op sampling reports the same per-access metadata as PEBS, so the
// pipeline transfers unchanged). Eight cores per node, no SMT, HyperTransport
// 3.0 links (~12.8 GB/s per direction -> 5.6 B/cycle at 2.3 GHz) and
// ~23 GB/s local controllers (10 B/cycle).
func Opteron6276() *Machine {
	m, err := New(Config{
		Name:           "AMD Opteron 6276, 4 sockets, 2.3 GHz",
		Nodes:          4,
		CoresPerNode:   8,
		ThreadsPerCore: 1,
		LocalBW:        10,
		RemoteBW:       5.6,
		RemoteBWOverride: map[Channel]float64{
			// Interlagos links are unevenly provisioned; some routes get a
			// half-width link.
			{Src: 0, Dst: 3}: 2.8,
			{Src: 3, Dst: 0}: 2.8,
			{Src: 1, Dst: 2}: 2.8,
		},
		Latencies: Latencies{
			L1:         4,
			L2:         20,
			L3:         60,
			LFB:        140,
			LocalDRAM:  195,
			RemoteDRAM: 330,
		},
		LineSize:     64,
		PageSize:     4096,
		HugePageSize: 2 << 20,
	})
	if err != nil {
		panic("topology: invalid Opteron6276 preset: " + err.Error())
	}
	return m
}

// TwoSocket models a smaller commodity 2-socket server without
// Hyper-Threading; useful in tests where 4-socket sweeps are overkill.
func TwoSocket() *Machine {
	m, err := New(Config{
		Name:           "generic 2-socket server",
		Nodes:          2,
		CoresPerNode:   8,
		ThreadsPerCore: 1,
		LocalBW:        14.8,
		RemoteBW:       4.7,
		Latencies: Latencies{
			L1:         4,
			L2:         12,
			L3:         38,
			LFB:        120,
			LocalDRAM:  220,
			RemoteDRAM: 330,
		},
		LineSize:     64,
		PageSize:     4096,
		HugePageSize: 2 << 20,
	})
	if err != nil {
		panic("topology: invalid TwoSocket preset: " + err.Error())
	}
	return m
}

// Uniform builds an n-node machine with symmetric links; handy for unit
// tests that need small deterministic geometries.
func Uniform(n, coresPerNode int) *Machine {
	m, err := New(Config{
		Name:           "uniform test machine",
		Nodes:          n,
		CoresPerNode:   coresPerNode,
		ThreadsPerCore: 1,
		LocalBW:        16,
		RemoteBW:       4,
		Latencies: Latencies{
			L1:         4,
			L2:         12,
			L3:         40,
			LFB:        120,
			LocalDRAM:  200,
			RemoteDRAM: 300,
		},
		LineSize:     64,
		PageSize:     4096,
		HugePageSize: 2 << 20,
	})
	if err != nil {
		panic("topology: invalid Uniform preset: " + err.Error())
	}
	return m
}
