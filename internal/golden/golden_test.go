// Package golden pins the end-to-end outputs of the detection pipeline —
// per-channel classifications, Table I feature vectors, CF rankings and raw
// engine channel accounting — against a committed snapshot, so performance
// refactors of the simulation hot path can prove they preserve verdicts.
//
// The snapshot in testdata/golden.json was generated from the map-based
// implementation that predates the dense-index fast path (regenerate with
// `go test ./internal/golden -run TestGoldenSnapshot -update`). Verdicts,
// contended-channel sets and decisive CF ranking orders must match exactly;
// feature values and CF magnitudes are compared under a small tolerance
// because the fast path replaced the reservoir RNG (a different but equally
// uniform subsample of the same access stream).
package golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/core"
	"drbw/internal/engine"
	"drbw/internal/features"
	"drbw/internal/memsim"
	"drbw/internal/micro"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/trace"
	"drbw/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json from the current implementation")

const goldenPath = "testdata/golden.json"

// ObjectCF is one ranked entry of a diagnosis.
type ObjectCF struct {
	Object string  `json:"object"`
	CF     float64 `json:"cf"`
}

// CaseDigest captures everything DR-BW reports for one detected case.
type CaseDigest struct {
	Name      string               `json:"name"`
	Detected  bool                 `json:"detected"`
	Contended []string             `json:"contended"`
	Features  map[string][]float64 `json:"features"` // channel -> Table I vector
	CF        []ObjectCF           `json:"cf"`       // overall ranking
}

// ChannelDigest captures one channel's integrate-phase accounting.
type ChannelDigest struct {
	Bytes float64 `json:"bytes"`
	Peak  float64 `json:"peak"`
	Avg   float64 `json:"avg"`
}

// RunDigest captures a raw (uncollected) engine run.
type RunDigest struct {
	Name     string                   `json:"name"`
	Cycles   float64                  `json:"cycles"`
	Local    float64                  `json:"local_dram"`
	Remote   float64                  `json:"remote_dram"`
	AvgLat   float64                  `json:"avg_dram_latency"`
	Channels map[string]ChannelDigest `json:"channels"`
}

// Snapshot is the golden file layout.
type Snapshot struct {
	Cases []CaseDigest `json:"cases"`
	Runs  []RunDigest  `json:"runs"`
}

type scenario struct {
	name    string
	builder program.Builder
	cfg     program.Config
}

func scenarios() []scenario {
	sc, _ := workloads.ByName("Streamcluster")
	return []scenario{
		{"sumv-centralized-T16-N4", micro.Sumv(micro.BigCentralized, 0), program.Config{Threads: 16, Nodes: 4, Input: "default", Seed: 501}},
		{"sumv-colocated-T16-N4", micro.Sumv(micro.BigColocated, 0), program.Config{Threads: 16, Nodes: 4, Input: "default", Seed: 502}},
		{"countv-small-T16-N2", micro.Countv(micro.SmallShared, 0), program.Config{Threads: 16, Nodes: 2, Input: "default", Seed: 504}},
		{"bandit-2s-4i", micro.Bandit(2, 4), program.Config{Threads: 4, Nodes: 1, Input: "default", Seed: 505}},
		{"streamcluster-T16-N2", sc.Builder, program.Config{Threads: 16, Nodes: 2, Input: "simLarge", Seed: 506}},
	}
}

func goldenEngineConfig() engine.Config {
	return engine.Config{Window: 8192, Warmup: 2048, ReservoirSize: 1024, Seed: 11}
}

// buildDetector trains the classifier on a reduced Table II set, exactly like
// the quick experiment context does.
func buildDetector(t testing.TB, m *topology.Machine) *core.Detector {
	t.Helper()
	set := micro.TrainingSet()
	var reduced []micro.Instance
	for i := 0; i < len(set); i += 16 {
		reduced = append(reduced, set[i])
	}
	td, err := core.CollectTraining(m, goldenEngineConfig(), reduced)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.TrainClassifier(td, core.DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return core.NewDetector(tree, goldenEngineConfig())
}

func digestCases(t testing.TB, m *topology.Machine, det *core.Detector) []CaseDigest {
	t.Helper()
	var out []CaseDigest
	for _, s := range scenarios() {
		dn, err := det.Detect(s.builder, m, s.cfg)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		d := CaseDigest{
			Name:      s.name,
			Detected:  dn.Detected,
			Contended: []string{},
			Features:  map[string][]float64{},
			CF:        []ObjectCF{},
		}
		for _, ch := range dn.Contended {
			d.Contended = append(d.Contended, ch.String())
		}
		for ch, vec := range features.ChannelVectors(m, dn.Samples, dn.Weight, det.MinSamples) {
			d.Features[ch.String()] = append([]float64(nil), vec[:]...)
		}
		for _, o := range dn.Diagnose().Overall {
			d.CF = append(d.CF, ObjectCF{Object: o.Object.Name, CF: o.CF})
		}
		out = append(out, d)
	}
	return out
}

// digestRuns drives two raw engine runs (no collector) and records the
// integrate-phase channel accounting, pinning the closed-loop model itself.
func digestRuns(t testing.TB, m *topology.Machine) []RunDigest {
	t.Helper()
	var out []RunDigest
	for _, pol := range []struct {
		name string
		pol  memsim.Policy
	}{
		{"scan-centralized", memsim.BindTo(0)},
		{"scan-interleaved", memsim.InterleaveAll()},
	} {
		as := memsim.NewAddressSpace(m)
		h := alloc.NewHeap(as, 0x10000000)
		const slice = 2 << 20
		threads := 16
		obj, err := h.Malloc("data", uint64(threads)*slice, alloc.Site{Func: "init"}, pol.pol)
		if err != nil {
			t.Fatal(err)
		}
		base := h.Object(obj).Base
		ph := trace.Phase{Name: "scan"}
		for i := 0; i < threads; i++ {
			ph.Threads = append(ph.Threads, trace.ThreadSpec{
				Stream:     &trace.Seq{Base: base + uint64(i)*slice, Len: slice, Elem: 8},
				Ops:        2e6,
				MLP:        8,
				WorkCycles: 1,
			})
		}
		e, err := engine.New(m, as, goldenCaches(), goldenEngineConfig())
		if err != nil {
			t.Fatal(err)
		}
		bind, err := engine.EvenBinding(m, threads, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run([]trace.Phase{ph}, bind)
		if err != nil {
			t.Fatal(err)
		}
		p := res.Phases[0]
		rd := RunDigest{
			Name:     pol.name,
			Cycles:   p.Cycles,
			Local:    p.LocalDRAMAccesses,
			Remote:   p.RemoteDRAMAccesses,
			AvgLat:   p.AvgDRAMLatency,
			Channels: map[string]ChannelDigest{},
		}
		for ch, s := range p.Channels {
			rd.Channels[ch.String()] = ChannelDigest{Bytes: s.Bytes, Peak: s.PeakUtil, Avg: s.AvgUtil}
		}
		out = append(out, rd)
	}
	return out
}

// goldenCaches shrinks the hierarchy so multi-MB scans miss within the
// golden window budget (same geometry the engine tests use).
func goldenCaches() cache.Config {
	return cache.Config{
		L1Size: 8 << 10, L1Assoc: 2,
		L2Size: 32 << 10, L2Assoc: 4,
		L3Size: 1 << 20, L3Assoc: 8,
		LFBEntries:    10,
		PrefetchDepth: 4, PrefetchStreams: 8,
	}
}

func buildSnapshot(t testing.TB) *Snapshot {
	m := topology.XeonE5_4650()
	det := buildDetector(t, m)
	return &Snapshot{Cases: digestCases(t, m, det), Runs: digestRuns(t, m)}
}

func TestGoldenSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline run is not short")
	}
	got := buildSnapshot(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
	}
	var want Snapshot
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, &want, got)
}

// --- comparison ---

// approx reports |a-b| <= abs or within rel relative error.
func approx(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

// featureTolerances returns (rel, abs) per Table I feature index. Ratio
// features (0-4) live in [0,1]; count features (5,7,9) scale with the
// weight; latency features (6,8,12) are cycle-valued.
//
// Features 10 (avg memory access latency) and 11 (LFB sample count) get
// wider bands: both depend on the LFB/MEM mix of the emitted-sample subset,
// and the golden file predates the reservoir RNG swap (shared rand.Rand →
// per-thread xorshift), which legitimately redraws that subset. The
// classification layer — verdicts, contended channels, CF ranking — is pinned
// exactly above, and bit-for-bit behavior of the current implementation is
// enforced separately by the engine's reference-path equivalence tests.
func featureTolerances(i int) (rel, abs float64) {
	switch i {
	case 0, 1, 2, 3, 4:
		return 0, 0.05
	case 5, 7, 9:
		return 0.15, 30
	case 11:
		return 0.35, 120
	case 10:
		return 0.25, 10
	default:
		return 0.15, 5
	}
}

func compareSnapshots(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if len(want.Cases) != len(got.Cases) {
		t.Fatalf("case count changed: golden %d, got %d", len(want.Cases), len(got.Cases))
	}
	for i, w := range want.Cases {
		g := got.Cases[i]
		if w.Name != g.Name {
			t.Fatalf("case %d renamed: golden %q, got %q", i, w.Name, g.Name)
		}
		if w.Detected != g.Detected {
			t.Errorf("%s: verdict flipped: golden detected=%v, got %v", w.Name, w.Detected, g.Detected)
		}
		if fmt.Sprint(w.Contended) != fmt.Sprint(g.Contended) {
			t.Errorf("%s: contended channels: golden %v, got %v", w.Name, w.Contended, g.Contended)
		}
		compareFeatures(t, w.Name, w.Features, g.Features)
		compareCF(t, w.Name, w.CF, g.CF)
	}
	if len(want.Runs) != len(got.Runs) {
		t.Fatalf("run count changed: golden %d, got %d", len(want.Runs), len(got.Runs))
	}
	for i, w := range want.Runs {
		g := got.Runs[i]
		// Raw engine accounting is reservoir-independent: only float
		// reassociation from the accumulation-order change is tolerated.
		const rel, abs = 1e-9, 1e-9
		if !approx(w.Cycles, g.Cycles, rel, abs) ||
			!approx(w.Local, g.Local, rel, abs) ||
			!approx(w.Remote, g.Remote, rel, abs) ||
			!approx(w.AvgLat, g.AvgLat, rel, abs) {
			t.Errorf("%s: run digest drifted: golden %+v, got %+v", w.Name, w, g)
		}
		for ch, ws := range w.Channels {
			gs, ok := g.Channels[ch]
			if !ok {
				t.Errorf("%s: channel %s disappeared", w.Name, ch)
				continue
			}
			if !approx(ws.Bytes, gs.Bytes, rel, abs) || !approx(ws.Peak, gs.Peak, rel, abs) || !approx(ws.Avg, gs.Avg, rel, abs) {
				t.Errorf("%s %s: channel stats drifted: golden %+v, got %+v", w.Name, ch, ws, gs)
			}
		}
		for ch := range g.Channels {
			if _, ok := w.Channels[ch]; !ok {
				t.Errorf("%s: new channel %s appeared", w.Name, ch)
			}
		}
	}
}

func compareFeatures(t *testing.T, name string, want, got map[string][]float64) {
	t.Helper()
	var chans []string
	for ch := range want {
		chans = append(chans, ch)
	}
	sort.Strings(chans)
	for _, ch := range chans {
		w, g := want[ch], got[ch]
		if g == nil {
			t.Errorf("%s: channel %s lost its feature vector", name, ch)
			continue
		}
		for i := range w {
			rel, abs := featureTolerances(i)
			if !approx(w[i], g[i], rel, abs) {
				t.Errorf("%s %s feature %d (%s): golden %g, got %g", name, ch, i, features.Names[i], w[i], g[i])
			}
		}
	}
	for ch := range got {
		if _, ok := want[ch]; !ok {
			t.Errorf("%s: unexpected new feature channel %s", name, ch)
		}
	}
}

// compareCF checks the ranking as a tolerance-matched set, and requires the
// top-ranked object to be stable whenever the golden ranking is decisive
// (lead >= 0.05 CF over the runner-up).
func compareCF(t *testing.T, name string, want, got []ObjectCF) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: CF ranking length: golden %d, got %d", name, len(want), len(got))
		return
	}
	wm := map[string]float64{}
	for _, o := range want {
		wm[o.Object] = o.CF
	}
	for _, o := range got {
		wcf, ok := wm[o.Object]
		if !ok {
			t.Errorf("%s: object %q not in golden ranking", name, o.Object)
			continue
		}
		if !approx(wcf, o.CF, 0.2, 0.03) {
			t.Errorf("%s: CF of %q: golden %g, got %g", name, o.Object, wcf, o.CF)
		}
	}
	if len(want) > 0 {
		decisive := len(want) == 1 || want[0].CF-want[1].CF >= 0.05
		if decisive && got[0].Object != want[0].Object {
			t.Errorf("%s: top CF object: golden %q, got %q", name, want[0].Object, got[0].Object)
		}
	}
}
