package cache

import (
	"testing"
	"testing/quick"

	"drbw/internal/topology"
)

func hier(t *testing.T, cfg Config) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(topology.Uniform(2, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// tiny returns a hierarchy small enough to exercise evictions quickly.
func tiny(t *testing.T) *Hierarchy {
	return hier(t, Config{
		L1Size: 1 << 10, L1Assoc: 2,
		L2Size: 4 << 10, L2Assoc: 4,
		L3Size: 16 << 10, L3Assoc: 4,
		LFBEntries:    4,
		PrefetchDepth: -1, // disabled
	})
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{L1: "L1", L2: "L2", L3: "L3", LFB: "LFB", MEM: "MEM", Level(9): "Level(9)"} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d) = %q, want %q", int(l), got, want)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny(t)
	r := h.Access(0, 0x100000)
	if r.Level != MEM || !r.DRAMTraffic {
		t.Fatalf("cold access = %+v, want MEM with traffic", r)
	}
	r = h.Access(0, 0x100000)
	if r.Level != L1 {
		t.Fatalf("second access = %+v, want L1", r)
	}
	// Same line, different byte: still an L1 hit.
	r = h.Access(0, 0x100000+32)
	if r.Level != L1 {
		t.Fatalf("same-line access = %+v, want L1", r)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := tiny(t)
	// L1: 1KB, 2-way, 64B lines -> 8 sets. Addresses 8*64 apart share a set.
	setStride := uint64(8 * 64)
	h.Access(0, 0x100000)
	// Evict from L1 by filling the set with two more lines.
	h.Access(0, 0x100000+setStride)
	h.Access(0, 0x100000+2*setStride)
	r := h.Access(0, 0x100000)
	if r.Level != L2 {
		t.Fatalf("after L1 eviction got %v, want L2", r.Level)
	}
}

func TestL3SharedAcrossCoresOnNode(t *testing.T) {
	h := tiny(t)
	m := topology.Uniform(2, 2)
	// CPUs 0 and 1 are different cores on node 0.
	if m.NodeOfCPU(0) != m.NodeOfCPU(1) || m.CoreOfCPU(0) == m.CoreOfCPU(1) {
		t.Fatal("test assumes CPUs 0,1 are distinct cores on one node")
	}
	h.Access(0, 0x200000)
	r := h.Access(1, 0x200000)
	if r.Level != L3 {
		t.Fatalf("cross-core same-node access = %v, want L3 (shared)", r.Level)
	}
}

func TestL3NotSharedAcrossNodes(t *testing.T) {
	h := tiny(t)
	m := topology.Uniform(2, 2)
	var other topology.CPUID = -1
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		if m.NodeOfCPU(topology.CPUID(cpu)) == 1 {
			other = topology.CPUID(cpu)
			break
		}
	}
	h.Access(0, 0x300000)
	r := h.Access(other, 0x300000)
	if r.Level != MEM {
		t.Fatalf("cross-node access = %v, want MEM (private L3s)", r.Level)
	}
}

func TestLFBHitOnInFlightLine(t *testing.T) {
	h := tiny(t)
	h.Access(0, 0x400000) // miss, line now in LFB
	// A second miss to a *different* line in the same burst, then back to a
	// recently missed line: LFB still holds it even though caches now hit.
	// To test the LFB path itself, evict from all caches via Flush of tags is
	// not possible; instead use distinct lines mapping to same sets heavily.
	// Simpler: the LFB check happens only after an L3 miss, so access the
	// same line from a different core on the same node *before* it lands in
	// L3... the model inserts into L3 on first access, so craft it by
	// checking lfb state directly.
	b := newLFB(2)
	if b.hit(5) {
		t.Error("empty LFB reported hit")
	}
	b.record(5)
	if !b.hit(5) {
		t.Error("recorded line not found in LFB")
	}
	b.record(6)
	b.record(7) // evicts 5
	if b.hit(5) {
		t.Error("evicted line still in LFB")
	}
	if !b.hit(6) || !b.hit(7) {
		t.Error("recent lines missing from LFB")
	}
	// Zero-entry LFB is inert.
	z := newLFB(0)
	z.record(1)
	if z.hit(1) {
		t.Error("zero-entry LFB reported hit")
	}
}

func TestPrefetcherCoversSequentialStream(t *testing.T) {
	cfg := Config{
		L1Size: 1 << 10, L1Assoc: 2,
		L2Size: 4 << 10, L2Assoc: 4,
		L3Size: 16 << 10, L3Assoc: 4,
		LFBEntries:    4,
		PrefetchDepth: 4, PrefetchStreams: 2,
	}
	h := hier(t, cfg)
	var prefetched, mem int
	// Long sequential scan over a range far larger than L3.
	for i := 0; i < 4096; i++ {
		r := h.Access(0, uint64(0x1000000+i*64))
		switch {
		case r.Prefetched:
			prefetched++
			if !r.DRAMTraffic {
				t.Fatal("prefetched access must still count as DRAM traffic")
			}
			if r.Level != LFB {
				t.Fatalf("prefetched access served from %v, want LFB", r.Level)
			}
		case r.Level == MEM:
			mem++
		}
	}
	if prefetched == 0 {
		t.Fatal("sequential stream never triggered the prefetcher")
	}
	// An established stream covers ~3/4 of line misses; the rest stay
	// exposed as raw DRAM accesses (prefetch lag).
	if mem == 0 {
		t.Error("prefetcher covered everything; expected ~1/4 of line misses exposed")
	}
	lineMisses := prefetched + mem
	ratio := float64(prefetched) / float64(lineMisses)
	if ratio < 0.6 || ratio > 0.9 {
		t.Errorf("prefetch coverage = %.2f of %d line misses, want ~0.75", ratio, lineMisses)
	}
}

func TestPrefetcherIgnoresRandomAccesses(t *testing.T) {
	p := newPrefetcher(4, 4)
	// A scattered pattern never establishes a stream.
	lines := []uint64{100, 7, 9000, 42, 55555, 3, 777, 123456}
	for _, l := range lines {
		if p.observe(l) {
			t.Fatalf("random line %d reported as prefetched", l)
		}
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	p := newPrefetcher(2, 2)
	covered := 0
	for i := uint64(0); i < 16; i++ {
		if p.observe(1000 + i) {
			covered++
		}
		if p.observe(9000 + i) {
			covered++
		}
	}
	if covered < 20 {
		t.Errorf("interleaved streams covered %d accesses, want most of 32", covered)
	}
}

func TestDisabledPrefetcher(t *testing.T) {
	p := newPrefetcher(0, 4)
	for i := uint64(0); i < 32; i++ {
		if p.observe(i) {
			t.Fatal("prefetcher with zero streams covered an access")
		}
	}
	p2 := newPrefetcher(4, 0)
	for i := uint64(0); i < 32; i++ {
		if p2.observe(i) {
			t.Fatal("prefetcher with zero depth covered an access")
		}
	}
}

func TestFlushClearsState(t *testing.T) {
	h := tiny(t)
	h.Access(0, 0x500000)
	h.Flush()
	r := h.Access(0, 0x500000)
	if r.Level != MEM {
		t.Fatalf("post-flush access = %v, want MEM", r.Level)
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := newSetAssoc(0, 4, 64); err == nil {
		t.Error("zero-size cache accepted")
	}
	if _, err := newSetAssoc(1024, 0, 64); err == nil {
		t.Error("zero-way cache accepted")
	}
	if _, err := newSetAssoc(1024, 5, 64); err == nil {
		t.Error("non-divisible way count accepted")
	}
	if _, err := newSetAssoc(24*64, 2, 64); err == nil { // 12 sets: not a power of two
		t.Error("non-power-of-two set count accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	h, err := NewHierarchy(topology.Uniform(2, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	got := h.Config()
	if got.L1Size != def.L1Size || got.L3Size != def.L3Size || got.LFBEntries != def.LFBEntries {
		t.Errorf("defaults not applied: %+v", got)
	}
	if h.SetsL1() <= 0 || h.SetsL3() <= 0 {
		t.Error("set counts must be positive")
	}
}

func TestAccessFromInvalidCPUPanics(t *testing.T) {
	h := tiny(t)
	defer func() {
		if recover() == nil {
			t.Error("access from invalid CPU did not panic")
		}
	}()
	h.Access(-1, 0x1000)
}

// Property: LRU keeps a working set that fits in one set resident.
func TestLRUWithinSetProperty(t *testing.T) {
	f := func(seed uint8) bool {
		c, err := newSetAssoc(4*64, 4, 64) // 1 set, 4 ways
		if err != nil {
			return false
		}
		// Four distinct lines fill the set; repeated re-access must always hit.
		base := uint64(seed) * 64
		lines := []uint64{base, base + 64, base + 128, base + 192}
		for _, l := range lines {
			c.access(l)
		}
		for round := 0; round < 8; round++ {
			for _, l := range lines {
				if !c.access(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a working set of w lines in one set with w > ways thrashes —
// a cyclic scan never hits under LRU.
func TestLRUThrashProperty(t *testing.T) {
	c, err := newSetAssoc(4*64, 4, 64) // 1 set, 4 ways
	if err != nil {
		t.Fatal(err)
	}
	lines := []uint64{0, 64, 128, 192, 256} // 5 lines, 4 ways
	for _, l := range lines {
		c.access(l)
	}
	for round := 0; round < 4; round++ {
		for _, l := range lines {
			if c.access(l) {
				t.Fatal("cyclic over-capacity scan hit under LRU")
			}
		}
	}
}

// TestFlushRestoresFreshState drives an access mix that exercises every
// stateful component — set LRU clocks, LFB cursor, prefetcher streams — then
// Flushes and requires the replayed mix to classify exactly like it does on a
// brand-new hierarchy. A Flush that forgot to reset the LRU clock or the
// LFB/prefetcher cursors would diverge here.
func TestFlushRestoresFreshState(t *testing.T) {
	cfg := Config{
		L1Size: 1 << 10, L1Assoc: 2,
		L2Size: 4 << 10, L2Assoc: 4,
		L3Size: 16 << 10, L3Assoc: 4,
		LFBEntries:    4,
		PrefetchDepth: 4, PrefetchStreams: 2,
	}
	mix := func(h *Hierarchy) []Result {
		var out []Result
		for i := 0; i < 4000; i++ {
			// Two sequential streams (prefetcher + LFB), one thrashing
			// pointer-chase (LRU eviction pressure), alternating CPUs.
			cpu := topology.CPUID(i % 4)
			var addr uint64
			switch i % 3 {
			case 0:
				addr = 0x100000 + uint64(i/3)*64
			case 1:
				addr = 0x900000 + uint64(i/3)*64
			default:
				addr = 0x500000 + uint64((i*2654435761)%(1<<16))&^63
			}
			out = append(out, h.Access(cpu, addr))
		}
		return out
	}
	dirty := hier(t, cfg)
	mix(dirty) // pollute every structure
	dirty.Flush()
	got := mix(dirty)
	want := mix(hier(t, cfg))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d after Flush = %+v, fresh hierarchy = %+v", i, got[i], want[i])
		}
	}
}

// TestRenormPreservesLRU forces the packed LRU clock of one setAssoc to the
// renormalization threshold mid-stream and requires every subsequent access
// to behave exactly like a twin cache whose clock is nowhere near overflow:
// renorm must be invisible to hit/miss decisions, including across a reset.
func TestRenormPreservesLRU(t *testing.T) {
	fresh := func() *setAssoc {
		c, err := newSetAssoc(4096, 8, 64)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := fresh(), fresh()
	drive := func(stage string, n, salt int) {
		for i := 0; i < n; i++ {
			var addr uint64
			switch i % 3 {
			case 0:
				addr = uint64(i/3) * 64 // sequential (same-line fast path off: line-grain)
			case 1:
				addr = 0x7e0000000000 + uint64(i/3)*64 // high static base
			default:
				addr = uint64((i*2654435761+salt)%(1<<14)) &^ 63 // thrash
			}
			if ga, gb := a.access(addr), b.access(addr); ga != gb {
				t.Fatalf("%s access %d (%#x): renormalized cache %v, twin %v", stage, i, addr, ga, gb)
			}
		}
	}
	drive("warm", 20000, 1)
	// Jump a's clock to just below the overflow threshold. Existing stamps
	// stay far below it, so ordering is intact; the next bump renormalizes.
	a.clock = wayUseMax - 3
	drive("across renorm", 20000, 2)
	if a.clock >= wayUseMax {
		t.Fatalf("clock %d never renormalized (max %d)", a.clock, uint64(wayUseMax))
	}
	// A reset (floor snapshot) after renorm must still invalidate everything.
	a.reset()
	b.reset()
	drive("after reset", 20000, 3)
	// And a renorm with a non-zero floor must keep stale entries stale:
	// reset both (floor snapshots the clock), then push only a's clock to
	// the threshold so its renorm runs while the flushed entries are stale.
	a.reset()
	b.reset()
	a.clock = wayUseMax - 3
	drive("renorm with floor", 20000, 4)
}

// TestReleaseRecyclesEquivalently drives a hierarchy hard, releases it, and
// requires the next NewHierarchy for the same machine+config — which should
// hand the recycled instance back — to behave exactly like a freshly built
// one.
func TestReleaseRecyclesEquivalently(t *testing.T) {
	m := topology.Uniform(2, 2)
	cfg := Config{
		L1Size: 1 << 10, L1Assoc: 2,
		L2Size: 4 << 10, L2Assoc: 4,
		L3Size: 16 << 10, L3Assoc: 4,
		LFBEntries:    4,
		PrefetchDepth: 4, PrefetchStreams: 2,
	}
	mix := func(h *Hierarchy) []Result {
		var out []Result
		for i := 0; i < 4000; i++ {
			cpu := topology.CPUID(i % 4)
			var addr uint64
			switch i % 3 {
			case 0:
				addr = 0x100000 + uint64(i/3)*64
			case 1:
				addr = 0x900000 + uint64(i/3)*64
			default:
				addr = 0x500000 + uint64((i*2654435761)%(1<<16))&^63
			}
			out = append(out, h.Access(cpu, addr))
		}
		return out
	}
	h1, err := NewHierarchy(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mix(h1) // pollute LRU stamps, LFBs, prefetch streams
	h1.Release()

	h2, err := NewHierarchy(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		// The pool may drop entries (GC); the equivalence check below still
		// holds, it just no longer exercises the recycle path.
		t.Log("pool did not return the released hierarchy; testing a fresh one")
	}
	fresh, err := NewHierarchy(topology.Uniform(2, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, want := mix(h2), mix(fresh)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d on recycled hierarchy = %+v, fresh = %+v", i, got[i], want[i])
		}
	}
}

// TestHierPoolBounded releases hierarchies for more machine+config shapes
// than the pool retains and checks that both bounds hold: at most
// poolMaxKeys distinct shapes survive (LRU eviction), and no shape stacks
// more than poolMaxPerKey instances. Without these bounds a long batch run
// over heterogeneous configs pins an unbounded set of multi-MB hierarchies.
func TestHierPoolBounded(t *testing.T) {
	m := topology.Uniform(2, 2)
	mkCfg := func(i int) Config {
		return Config{
			L1Size: 1 << 10, L1Assoc: 2,
			L2Size: 4 << 10, L2Assoc: 4,
			L3Size: 16 << 10, L3Assoc: 4,
			LFBEntries: 4 + i, // distinct config => distinct pool key
		}
	}
	shapes := 2 * poolMaxKeys
	for i := 0; i < shapes; i++ {
		// Over-release one shape to probe the per-key depth cap too.
		n := 1
		if i == shapes-1 {
			n = 3 * poolMaxPerKey()
		}
		for j := 0; j < n; j++ {
			h, err := NewHierarchy(m, mkCfg(i))
			if err != nil {
				t.Fatal(err)
			}
			h.Release()
			// Take it back out and re-release so the over-release loop
			// actually accumulates distinct instances in the stack.
			if j < n-1 {
				h2, err := NewHierarchy(m, mkCfg(i))
				if err != nil {
					t.Fatal(err)
				}
				defer h2.Release()
			}
		}
	}
	keys, hiers := PoolStats()
	if keys > poolMaxKeys {
		t.Errorf("pool retains %d keys, cap is %d", keys, poolMaxKeys)
	}
	if max := poolMaxKeys * poolMaxPerKey(); hiers > max {
		t.Errorf("pool retains %d hierarchies, cap is %d", hiers, max)
	}
	// The most recently released shape must still be cached (LRU keeps it).
	h, err := NewHierarchy(m, mkCfg(shapes-1))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if keysAfter, _ := PoolStats(); keysAfter > keys {
		t.Errorf("NewHierarchy for a cached shape grew the pool: %d -> %d keys", keys, keysAfter)
	}
}
