// Package cache simulates the on-chip memory hierarchy of a NUMA machine:
// per-core L1 and L2 set-associative caches, one shared inclusive L3 per
// socket, line fill buffers (LFBs), and a per-core stream prefetcher.
//
// The hierarchy determines two things the rest of DR-BW depends on:
//
//  1. The *data source* a PEBS sample would report for an access — L1, L2,
//     L3, LFB, or DRAM. Table I's features count LFB and DRAM samples and
//     average their latencies, so the source classification must be faithful.
//  2. Which accesses generate DRAM traffic at all, which is what the
//     bandwidth-contention model in internal/engine meters. Notably, a
//     hardware prefetcher hides *latency* (a demand load finds its line
//     in flight and is served from an LFB) but not *bandwidth* — prefetched
//     lines still cross the interconnect. The paper calls out exactly this
//     effect as the reason count-based contention heuristics mispredict.
package cache

import (
	"fmt"
	"runtime"
	"sync"

	"drbw/internal/topology"
)

// Level identifies the hierarchy level that served an access.
type Level int

// Hierarchy levels in increasing distance from the core.
const (
	L1 Level = iota
	L2
	L3
	LFB
	MEM // served by DRAM (local or remote is decided by page placement)
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case LFB:
		return "LFB"
	case MEM:
		return "MEM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Result describes how the hierarchy served one access.
type Result struct {
	Level Level
	// Prefetched marks a demand access whose line was (or would have been)
	// covered by the stream prefetcher: served as LFB, but still counted as
	// DRAM traffic.
	Prefetched bool
	// DRAMTraffic reports whether the access caused a cache line to cross a
	// memory channel (demand miss or prefetch fill).
	DRAMTraffic bool
}

// Config sets the geometry of the hierarchy. Zero fields take the E5-4650
// defaults from DefaultConfig.
type Config struct {
	L1Size, L1Assoc int // per core
	L2Size, L2Assoc int // per core
	L3Size, L3Assoc int // per socket, shared
	LFBEntries      int // outstanding misses tracked per core
	// PrefetchDepth is how many consecutive line accesses establish a
	// stream; once established, subsequent sequential demand misses are
	// served from an LFB. Zero takes the default (4); negative disables
	// prefetching entirely.
	PrefetchDepth int
	// PrefetchStreams is how many concurrent streams each core tracks.
	PrefetchStreams int
}

// DefaultConfig mirrors the paper's Xeon E5-4650: 32 KB 8-way L1, 256 KB
// 8-way L2, 20 MB 20-way shared L3 per socket, 10 LFBs, and a stream
// prefetcher that locks on after 4 sequential lines.
func DefaultConfig() Config {
	return Config{
		L1Size: 32 << 10, L1Assoc: 8,
		L2Size: 256 << 10, L2Assoc: 8,
		L3Size: 20 << 20, L3Assoc: 20,
		LFBEntries:      10,
		PrefetchDepth:   4,
		PrefetchStreams: 8,
	}
}

// setAssoc is a single set-associative cache with LRU replacement.
//
// Instead of zeroing its arrays, reset snapshots the LRU clock into floor:
// an entry is live only while use > floor, so stale entries both fail the
// hit check and (having the lowest use values in their set) are evicted
// first — exactly the behaviour of genuinely empty ways. That makes reset
// O(1), which matters because the engine flushes the whole hierarchy at
// every window boundary.
type setAssoc struct {
	sets     int
	ways     int
	lineBits uint
	// w packs one cache entry per uint64: the low wayTagBits hold the line
	// number biased by +1 (0 = never filled), the high bits hold the LRU
	// clock of the last touch, live only while > floor. 8 bytes per entry
	// halves both the construction-time zeroing and the memory traffic of
	// every way scan relative to separate tag/use words — the simulated L3
	// arrays are far larger than the host's caches, so scans are
	// memory-bound.
	w     []uint64 // sets*ways entries
	clock uint64
	floor uint64 // clock value at the last reset
	// Same-line fast path: the most recently accessed line is always
	// resident (a hit refreshes it, a miss fills it), so a repeat access is
	// a guaranteed hit at lastIdx. Sequential streams touch each 64-byte
	// line several times in a row, so this skips most way scans.
	lastTag uint64 // line+1 of the previous access; 0 after reset
	lastIdx int
}

const (
	// wayTagBits bounds the supported address space: line numbers must fit
	// in the tag field, so addresses beyond 2^(wayTagBits+lineBits) are
	// rejected loudly. 41 bits cover the 0x7f00_0000_0000 static bases the
	// workload models use with room to spare.
	wayTagBits = 41
	wayTagMask = 1<<wayTagBits - 1
	// wayUseMax is where the packed LRU clock would overflow; bump
	// renormalizes the stamps (order-preserving) before that happens.
	wayUseMax = 1<<(64-wayTagBits) - 1
)

func newSetAssoc(size, assoc, lineSize int) (*setAssoc, error) {
	if size <= 0 || assoc <= 0 {
		return nil, fmt.Errorf("cache: size %d and associativity %d must be positive", size, assoc)
	}
	lines := size / lineSize
	if lines < assoc || lines%assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d ways", lines, assoc)
	}
	if assoc > 32 {
		return nil, fmt.Errorf("cache: associativity %d exceeds the supported maximum of 32", assoc)
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	return &setAssoc{
		sets: sets, ways: assoc, lineBits: lineBits,
		w: make([]uint64, sets*assoc),
	}, nil
}

// access looks up the line holding addr, inserting it on miss. It returns
// whether the access hit.
func (c *setAssoc) access(addr uint64) bool {
	// Tag 0 denotes an empty way, so bias stored tags by +1.
	tag := (addr >> c.lineBits) + 1
	if tag > wayTagMask {
		panic(fmt.Sprintf("cache: address %#x beyond the supported range", addr))
	}
	if tag == c.lastTag {
		c.w[c.lastIdx] = tag | c.bump()<<wayTagBits
		return true
	}
	return c.accessSlow(tag)
}

// bump advances the LRU clock, renormalizing the packed stamps just before
// the use field would overflow.
func (c *setAssoc) bump() uint64 {
	if c.clock+1 >= wayUseMax {
		c.renorm()
	}
	c.clock++
	return c.clock
}

// renorm compacts every live LRU stamp while preserving its set's recency
// order, resetting the clock to small values. Victim choice compares stamps
// only within one set and hits only check use > floor, so behaviour is
// bit-identical to an unbounded clock. Runs once per ~8M accesses to this
// cache, but its cost still matters: recycled hierarchies carry their clock
// across runs, so long batch sweeps renorm at a steady rate, and an earlier
// sort.Slice-per-set implementation made each renorm of a large L3 allocate
// tens of thousands of closure+swapper objects — the dominant allocation
// source of whole batch sweeps. The insertion sort below is allocation-free
// (ways ≤ 20) and orders the ways identically.
func (c *setAssoc) renorm() {
	var ord [32]int // max associativity supported by renorm's scratch
	for base := 0; base < len(c.w); base += c.ways {
		w := c.w[base : base+c.ways]
		// Insertion sort of way indices by stamp, ascending. Stable, so ties
		// between stale entries keep index order (immaterial, but it matches
		// the previous sort exactly on live entries, whose stamps are unique).
		n := 0
		for i := range w {
			stamp := w[i] >> wayTagBits
			j := n
			for j > 0 && w[ord[j-1]]>>wayTagBits > stamp {
				ord[j] = ord[j-1]
				j--
			}
			ord[j] = i
			n++
		}
		rank := uint64(0)
		for _, i := range ord[:n] {
			if w[i]>>wayTagBits <= c.floor {
				w[i] &= wayTagMask // stale or empty: lowest possible stamp
				continue
			}
			rank++
			w[i] = w[i]&wayTagMask | rank<<wayTagBits
		}
	}
	c.floor = 0
	c.clock = uint64(c.ways) // ≥ every rank just assigned
}

// accessSlow is the full way scan for a line other than the last one
// touched. It takes the biased tag so AccessOn computes the line number
// once for all three levels.
func (c *setAssoc) accessSlow(tag uint64) bool {
	base := (int(tag-1) & (c.sets - 1)) * c.ways
	clock := c.bump() << wayTagBits
	floor := c.floor
	w := c.w[base : base+c.ways]
	// The victim scan compares packed words directly: the LRU stamp sits in
	// the high bits, so the minimum packed value has the minimum stamp. Ties
	// only occur between stale entries, where the choice is immaterial.
	victim, victimE := 0, w[0]
	for i, e := range w {
		if e&wayTagMask == tag && e>>wayTagBits > floor {
			w[i] = tag | clock
			c.lastTag, c.lastIdx = tag, base+i
			return true
		}
		if e < victimE {
			victim, victimE = i, e
		}
	}
	w[victim] = tag | clock
	c.lastTag, c.lastIdx = tag, base+victim
	return false
}

// accessMiss is accessSlow without the same-line bookkeeping. L2 and L3 are
// only reached on an L1 miss, and a single core can never touch them with
// the same line twice in a row (the second access would hit L1), so their
// lastTag would never match and maintaining it is pure overhead.
func (c *setAssoc) accessMiss(tag uint64) bool {
	base := (int(tag-1) & (c.sets - 1)) * c.ways
	clock := c.bump() << wayTagBits
	floor := c.floor
	w := c.w[base : base+c.ways]
	victim, victimE := 0, w[0]
	for i, e := range w {
		if e&wayTagMask == tag && e>>wayTagBits > floor {
			w[i] = tag | clock
			return true
		}
		if e < victimE {
			victim, victimE = i, e
		}
	}
	w[victim] = tag | clock
	return false
}

// insert fills a line without reporting hit/miss (used for inclusive fills).
func (c *setAssoc) insert(addr uint64) { c.access(addr) }

// reset empties the cache in O(1): every entry written before this point
// drops below floor, making it both unhittable and the preferred victim, so
// subsequent behaviour is bit-identical to a freshly allocated cache.
func (c *setAssoc) reset() {
	c.floor = c.clock
	c.lastTag = 0
}

// lfb tracks the last N missed lines of one core: a miss to a line that is
// already in flight is served by the line fill buffer.
type lfb struct {
	lines []uint64
	next  int
}

func newLFB(entries int) *lfb { return &lfb{lines: make([]uint64, entries)} }

func (b *lfb) hit(line uint64) bool {
	tag := line + 1
	for _, l := range b.lines {
		if l == tag {
			return true
		}
	}
	return false
}

// reset clears the in-flight lines and rewinds the insertion cursor.
func (b *lfb) reset() {
	for i := range b.lines {
		b.lines[i] = 0
	}
	b.next = 0
}

func (b *lfb) record(line uint64) {
	if len(b.lines) == 0 {
		return
	}
	b.lines[b.next] = line + 1
	b.next = (b.next + 1) % len(b.lines)
}

// stream is one detected sequential access stream.
type stream struct {
	nextLine uint64
	depth    int
	lastUse  uint64
}

// prefetcher is a per-core stream prefetcher.
type prefetcher struct {
	streams []stream
	depth   int
	clock   uint64
}

func newPrefetcher(streams, depth int) *prefetcher {
	return &prefetcher{streams: make([]stream, streams), depth: depth}
}

// reset clears all detected streams and rewinds the recency clock.
func (p *prefetcher) reset() {
	for i := range p.streams {
		p.streams[i] = stream{}
	}
	p.clock = 0
}

// observe advances the stream table with a demand access to line and reports
// whether the line was covered by an established stream.
func (p *prefetcher) observe(line uint64) bool {
	if p.depth <= 0 || len(p.streams) == 0 {
		return false
	}
	p.clock++
	// Match an existing stream expecting this line.
	for i := range p.streams {
		s := &p.streams[i]
		if s.depth > 0 && line == s.nextLine {
			s.nextLine = line + 1
			s.depth++
			s.lastUse = p.clock
			// An established stream covers most, but not all, of its line
			// misses: the prefetcher lags the demand stream, so every 4th
			// line is still exposed as a raw DRAM access. PEBS on real
			// streaming code likewise keeps reporting a share of
			// DRAM-sourced loads.
			return s.depth > p.depth && s.depth%4 != 0
		}
	}
	// Start or recycle a stream slot (LRU).
	victim := 0
	for i := range p.streams {
		if p.streams[i].lastUse < p.streams[victim].lastUse {
			victim = i
		}
	}
	p.streams[victim] = stream{nextLine: line + 1, depth: 1, lastUse: p.clock}
	return false
}

// Hierarchy is the full cache system of one machine.
type Hierarchy struct {
	machine  *topology.Machine
	cfg      Config
	lineBits uint
	// The per-core and per-node components are stored by value: the access
	// hot path then reaches any of them with one indexed load instead of
	// chasing a pointer per level.
	l1, l2 []setAssoc   // per core
	l3     []setAssoc   // per node
	lfbs   []lfb        // per core
	pf     []prefetcher // per core
	// Flat per-CPU topology tables so the access hot path never re-resolves
	// core/node through the machine.
	coreOf []topology.CoreID
	nodeOf []topology.NodeID
}

// hierKey identifies one hierarchy build: the machine pointer (geometry and
// CPU tables) plus the effective configuration. Both are comparable, so the
// key can index the recycle pool directly.
type hierKey struct {
	m   *topology.Machine
	cfg Config
}

// hierPool recycles hierarchies returned through Release, keyed by hierKey.
// The epoch-floor reset makes a flushed hierarchy behave bit-identically to
// a freshly built one, so NewHierarchy can hand back a recycled instance and
// skip both the allocation and the zeroing of its way arrays. Batch sweeps
// build one hierarchy per run, which made that construction cost a hot path.
//
// The pool is bounded on both axes, unlike the sync.Map/sync.Pool it
// replaces: at most poolMaxKeys distinct (machine, geometry) builds are
// retained (keys are evicted least-recently-used, so short-lived machines —
// tests, per-trace topologies — cannot accumulate forever), and each key
// keeps at most poolMaxPerKey hierarchies (enough to feed a full worker
// pool). Within those bounds retention is deterministic: a plain map never
// drops entries on GC the way sync.Pool does, so a batch sweep is never
// surprised by a multi-megabyte hierarchy rebuild mid-run.
var hierPool = hierCache{stacks: make(map[hierKey][]*Hierarchy)}

// poolMaxKeys bounds the distinct (machine, geometry) builds retained.
const poolMaxKeys = 8

// poolMaxPerKey bounds the hierarchies kept per key: one per worker of a
// saturated batch pool, with a small floor.
func poolMaxPerKey() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

type hierCache struct {
	mu     sync.Mutex
	stacks map[hierKey][]*Hierarchy
	order  []hierKey // least recently used first
}

// touch moves k to the most-recently-used end of the LRU order, inserting
// it (evicting the oldest key if full) when absent.
func (p *hierCache) touch(k hierKey) {
	for i, o := range p.order {
		if o == k {
			copy(p.order[i:], p.order[i+1:])
			p.order[len(p.order)-1] = k
			return
		}
	}
	if len(p.order) >= poolMaxKeys {
		old := p.order[0]
		copy(p.order, p.order[1:])
		p.order = p.order[:len(p.order)-1]
		delete(p.stacks, old)
	}
	p.order = append(p.order, k)
	if _, ok := p.stacks[k]; !ok {
		p.stacks[k] = nil
	}
}

func (p *hierCache) get(k hierKey) *Hierarchy {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stacks[k]
	if len(s) == 0 {
		return nil
	}
	h := s[len(s)-1]
	s[len(s)-1] = nil
	p.stacks[k] = s[:len(s)-1]
	p.touch(k)
	return h
}

func (p *hierCache) put(k hierKey, h *Hierarchy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.touch(k)
	if s := p.stacks[k]; len(s) < poolMaxPerKey() {
		p.stacks[k] = append(s, h)
	}
}

// PoolStats reports the recycle pool's occupancy — distinct keys and total
// retained hierarchies. Exposed for the bounding tests.
func PoolStats() (keys, hierarchies int) {
	hierPool.mu.Lock()
	defer hierPool.mu.Unlock()
	for _, s := range hierPool.stacks {
		hierarchies += len(s)
	}
	return len(hierPool.stacks), hierarchies
}

// NewHierarchy builds the hierarchy for machine m.
func NewHierarchy(m *topology.Machine, cfg Config) (*Hierarchy, error) {
	def := DefaultConfig()
	if cfg.L1Size == 0 {
		cfg.L1Size, cfg.L1Assoc = def.L1Size, def.L1Assoc
	}
	if cfg.L2Size == 0 {
		cfg.L2Size, cfg.L2Assoc = def.L2Size, def.L2Assoc
	}
	if cfg.L3Size == 0 {
		cfg.L3Size, cfg.L3Assoc = def.L3Size, def.L3Assoc
	}
	if cfg.LFBEntries == 0 {
		cfg.LFBEntries = def.LFBEntries
	}
	if cfg.PrefetchDepth == 0 {
		cfg.PrefetchDepth = def.PrefetchDepth
	}
	if cfg.PrefetchStreams == 0 {
		cfg.PrefetchStreams = def.PrefetchStreams
	}

	if h := hierPool.get(hierKey{m, cfg}); h != nil {
		return h, nil
	}

	line := m.LineSize()
	h := &Hierarchy{machine: m, cfg: cfg, coreOf: m.CPUCoreTable(), nodeOf: m.CPUNodeTable()}
	for 1<<h.lineBits < line {
		h.lineBits++
	}
	cores := m.NumCores()
	for c := 0; c < cores; c++ {
		l1, err := newSetAssoc(cfg.L1Size, cfg.L1Assoc, line)
		if err != nil {
			return nil, fmt.Errorf("cache: L1: %w", err)
		}
		l2, err := newSetAssoc(cfg.L2Size, cfg.L2Assoc, line)
		if err != nil {
			return nil, fmt.Errorf("cache: L2: %w", err)
		}
		h.l1 = append(h.l1, *l1)
		h.l2 = append(h.l2, *l2)
		h.lfbs = append(h.lfbs, *newLFB(cfg.LFBEntries))
		h.pf = append(h.pf, *newPrefetcher(cfg.PrefetchStreams, cfg.PrefetchDepth))
	}
	for n := 0; n < m.Nodes(); n++ {
		l3, err := newSetAssoc(cfg.L3Size, cfg.L3Assoc, line)
		if err != nil {
			return nil, fmt.Errorf("cache: L3: %w", err)
		}
		h.l3 = append(h.l3, *l3)
	}
	return h, nil
}

// Config returns the effective configuration after defaults were applied.
func (h *Hierarchy) Config() Config { return h.cfg }

// Release flushes h and returns it to the recycle pool consulted by
// NewHierarchy. The hierarchy must not be used after Release; the next
// NewHierarchy call with the same machine and configuration may hand it to
// another caller.
func (h *Hierarchy) Release() {
	h.Flush()
	hierPool.put(hierKey{h.machine, h.cfg}, h)
}

// Access runs one demand access (read or write, write-allocate) issued by
// cpu through the hierarchy.
func (h *Hierarchy) Access(cpu topology.CPUID, addr uint64) Result {
	if cpu < 0 || int(cpu) >= len(h.coreOf) {
		panic(fmt.Sprintf("cache: access from invalid CPU %d", cpu))
	}
	return h.AccessOn(h.coreOf[cpu], h.nodeOf[cpu], addr)
}

// AccessOn is the hot-path variant of Access for callers that already hold
// the issuing CPU's core and node (the engine resolves them once per thread
// per phase, not once per access). core and node must belong together.
func (h *Hierarchy) AccessOn(core topology.CoreID, node topology.NodeID, addr uint64) Result {
	// All levels share the machine's line size, so the biased tag is
	// computed once. The L1 same-line check is inlined here because the
	// bulk of sequential traffic resolves on it.
	line := addr >> h.lineBits
	tag := line + 1
	if tag > wayTagMask {
		panic(fmt.Sprintf("cache: address %#x beyond the supported range", addr))
	}
	l1 := &h.l1[core]
	if tag == l1.lastTag {
		l1.w[l1.lastIdx] = tag | l1.bump()<<wayTagBits
		return Result{Level: L1}
	}
	if l1.accessSlow(tag) {
		return Result{Level: L1}
	}
	if h.l2[core].accessMiss(tag) {
		return Result{Level: L2}
	}
	if h.l3[node].accessMiss(tag) {
		// L2 fill already happened via the access calls above.
		return Result{Level: L3}
	}
	// L3 miss: line comes from DRAM. If the miss is already outstanding in
	// an LFB, the access is served by the buffer and causes no new traffic.
	if h.lfbs[core].hit(line) {
		return Result{Level: LFB}
	}
	h.lfbs[core].record(line)
	// An established prefetch stream had this line in flight before the
	// demand access arrived: latency of an LFB, bandwidth of a DRAM fetch.
	if h.pf[core].observe(line) {
		return Result{Level: LFB, Prefetched: true, DRAMTraffic: true}
	}
	return Result{Level: MEM, DRAMTraffic: true}
}

// Flush empties every cache, LFB and stream table; used between simulation
// windows so phases do not leak state into each other. Every piece of
// mutable state is invalidated — cache entries (via the O(1) epoch floor,
// observably identical to zeroing the arrays), LFB cursors and prefetch
// streams — so back-to-back windows start from bit-identical replacement
// state, and no per-flush allocation is performed.
func (h *Hierarchy) Flush() {
	for i := range h.l1 {
		h.l1[i].reset()
		h.l2[i].reset()
		h.lfbs[i].reset()
		h.pf[i].reset()
	}
	for i := range h.l3 {
		h.l3[i].reset()
	}
}

// LineSize returns the machine's cache-line size in bytes.
func (h *Hierarchy) LineSize() int { return h.machine.LineSize() }

// SetsL1 exposes the L1 set count (used by the bandit generator to build
// conflict-miss address streams that always bypass the caches).
func (h *Hierarchy) SetsL1() int { return h.l1[0].sets }

// SetsL3 exposes the L3 set count for the same purpose.
func (h *Hierarchy) SetsL3() int { return h.l3[0].sets }
