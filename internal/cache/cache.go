// Package cache simulates the on-chip memory hierarchy of a NUMA machine:
// per-core L1 and L2 set-associative caches, one shared inclusive L3 per
// socket, line fill buffers (LFBs), and a per-core stream prefetcher.
//
// The hierarchy determines two things the rest of DR-BW depends on:
//
//  1. The *data source* a PEBS sample would report for an access — L1, L2,
//     L3, LFB, or DRAM. Table I's features count LFB and DRAM samples and
//     average their latencies, so the source classification must be faithful.
//  2. Which accesses generate DRAM traffic at all, which is what the
//     bandwidth-contention model in internal/engine meters. Notably, a
//     hardware prefetcher hides *latency* (a demand load finds its line
//     in flight and is served from an LFB) but not *bandwidth* — prefetched
//     lines still cross the interconnect. The paper calls out exactly this
//     effect as the reason count-based contention heuristics mispredict.
package cache

import (
	"fmt"

	"drbw/internal/topology"
)

// Level identifies the hierarchy level that served an access.
type Level int

// Hierarchy levels in increasing distance from the core.
const (
	L1 Level = iota
	L2
	L3
	LFB
	MEM // served by DRAM (local or remote is decided by page placement)
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case LFB:
		return "LFB"
	case MEM:
		return "MEM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Result describes how the hierarchy served one access.
type Result struct {
	Level Level
	// Prefetched marks a demand access whose line was (or would have been)
	// covered by the stream prefetcher: served as LFB, but still counted as
	// DRAM traffic.
	Prefetched bool
	// DRAMTraffic reports whether the access caused a cache line to cross a
	// memory channel (demand miss or prefetch fill).
	DRAMTraffic bool
}

// Config sets the geometry of the hierarchy. Zero fields take the E5-4650
// defaults from DefaultConfig.
type Config struct {
	L1Size, L1Assoc int // per core
	L2Size, L2Assoc int // per core
	L3Size, L3Assoc int // per socket, shared
	LFBEntries      int // outstanding misses tracked per core
	// PrefetchDepth is how many consecutive line accesses establish a
	// stream; once established, subsequent sequential demand misses are
	// served from an LFB. Zero takes the default (4); negative disables
	// prefetching entirely.
	PrefetchDepth int
	// PrefetchStreams is how many concurrent streams each core tracks.
	PrefetchStreams int
}

// DefaultConfig mirrors the paper's Xeon E5-4650: 32 KB 8-way L1, 256 KB
// 8-way L2, 20 MB 20-way shared L3 per socket, 10 LFBs, and a stream
// prefetcher that locks on after 4 sequential lines.
func DefaultConfig() Config {
	return Config{
		L1Size: 32 << 10, L1Assoc: 8,
		L2Size: 256 << 10, L2Assoc: 8,
		L3Size: 20 << 20, L3Assoc: 20,
		LFBEntries:      10,
		PrefetchDepth:   4,
		PrefetchStreams: 8,
	}
}

// setAssoc is a single set-associative cache with LRU replacement.
type setAssoc struct {
	sets     int
	ways     int
	lineBits uint
	tags     []uint64 // sets*ways entries; 0 means empty
	use      []uint64 // LRU clock per entry
	clock    uint64
}

func newSetAssoc(size, assoc, lineSize int) (*setAssoc, error) {
	if size <= 0 || assoc <= 0 {
		return nil, fmt.Errorf("cache: size %d and associativity %d must be positive", size, assoc)
	}
	lines := size / lineSize
	if lines < assoc || lines%assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d ways", lines, assoc)
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	return &setAssoc{
		sets: sets, ways: assoc, lineBits: lineBits,
		tags: make([]uint64, sets*assoc),
		use:  make([]uint64, sets*assoc),
	}, nil
}

// access looks up the line holding addr, inserting it on miss. It returns
// whether the access hit.
func (c *setAssoc) access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	c.clock++
	// Tag 0 denotes an empty way, so bias stored tags by +1.
	tag := line + 1
	victim, victimUse := base, c.use[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.use[i] = c.clock
			return true
		}
		if c.use[i] < victimUse {
			victim, victimUse = i, c.use[i]
		}
	}
	c.tags[victim] = tag
	c.use[victim] = c.clock
	return false
}

// insert fills a line without reporting hit/miss (used for inclusive fills).
func (c *setAssoc) insert(addr uint64) { c.access(addr) }

// lfb tracks the last N missed lines of one core: a miss to a line that is
// already in flight is served by the line fill buffer.
type lfb struct {
	lines []uint64
	next  int
}

func newLFB(entries int) *lfb { return &lfb{lines: make([]uint64, entries)} }

func (b *lfb) hit(line uint64) bool {
	tag := line + 1
	for _, l := range b.lines {
		if l == tag {
			return true
		}
	}
	return false
}

func (b *lfb) record(line uint64) {
	if len(b.lines) == 0 {
		return
	}
	b.lines[b.next] = line + 1
	b.next = (b.next + 1) % len(b.lines)
}

// stream is one detected sequential access stream.
type stream struct {
	nextLine uint64
	depth    int
	lastUse  uint64
}

// prefetcher is a per-core stream prefetcher.
type prefetcher struct {
	streams []stream
	depth   int
	clock   uint64
}

func newPrefetcher(streams, depth int) *prefetcher {
	return &prefetcher{streams: make([]stream, streams), depth: depth}
}

// observe advances the stream table with a demand access to line and reports
// whether the line was covered by an established stream.
func (p *prefetcher) observe(line uint64) bool {
	if p.depth <= 0 || len(p.streams) == 0 {
		return false
	}
	p.clock++
	// Match an existing stream expecting this line.
	for i := range p.streams {
		s := &p.streams[i]
		if s.depth > 0 && line == s.nextLine {
			s.nextLine = line + 1
			s.depth++
			s.lastUse = p.clock
			// An established stream covers most, but not all, of its line
			// misses: the prefetcher lags the demand stream, so every 4th
			// line is still exposed as a raw DRAM access. PEBS on real
			// streaming code likewise keeps reporting a share of
			// DRAM-sourced loads.
			return s.depth > p.depth && s.depth%4 != 0
		}
	}
	// Start or recycle a stream slot (LRU).
	victim := 0
	for i := range p.streams {
		if p.streams[i].lastUse < p.streams[victim].lastUse {
			victim = i
		}
	}
	p.streams[victim] = stream{nextLine: line + 1, depth: 1, lastUse: p.clock}
	return false
}

// Hierarchy is the full cache system of one machine.
type Hierarchy struct {
	machine  *topology.Machine
	cfg      Config
	lineBits uint
	l1, l2   []*setAssoc   // per core
	l3       []*setAssoc   // per node
	lfbs     []*lfb        // per core
	pf       []*prefetcher // per core
}

// NewHierarchy builds the hierarchy for machine m.
func NewHierarchy(m *topology.Machine, cfg Config) (*Hierarchy, error) {
	def := DefaultConfig()
	if cfg.L1Size == 0 {
		cfg.L1Size, cfg.L1Assoc = def.L1Size, def.L1Assoc
	}
	if cfg.L2Size == 0 {
		cfg.L2Size, cfg.L2Assoc = def.L2Size, def.L2Assoc
	}
	if cfg.L3Size == 0 {
		cfg.L3Size, cfg.L3Assoc = def.L3Size, def.L3Assoc
	}
	if cfg.LFBEntries == 0 {
		cfg.LFBEntries = def.LFBEntries
	}
	if cfg.PrefetchDepth == 0 {
		cfg.PrefetchDepth = def.PrefetchDepth
	}
	if cfg.PrefetchStreams == 0 {
		cfg.PrefetchStreams = def.PrefetchStreams
	}

	line := m.LineSize()
	h := &Hierarchy{machine: m, cfg: cfg}
	for 1<<h.lineBits < line {
		h.lineBits++
	}
	cores := m.NumCores()
	for c := 0; c < cores; c++ {
		l1, err := newSetAssoc(cfg.L1Size, cfg.L1Assoc, line)
		if err != nil {
			return nil, fmt.Errorf("cache: L1: %w", err)
		}
		l2, err := newSetAssoc(cfg.L2Size, cfg.L2Assoc, line)
		if err != nil {
			return nil, fmt.Errorf("cache: L2: %w", err)
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
		h.lfbs = append(h.lfbs, newLFB(cfg.LFBEntries))
		h.pf = append(h.pf, newPrefetcher(cfg.PrefetchStreams, cfg.PrefetchDepth))
	}
	for n := 0; n < m.Nodes(); n++ {
		l3, err := newSetAssoc(cfg.L3Size, cfg.L3Assoc, line)
		if err != nil {
			return nil, fmt.Errorf("cache: L3: %w", err)
		}
		h.l3 = append(h.l3, l3)
	}
	return h, nil
}

// Config returns the effective configuration after defaults were applied.
func (h *Hierarchy) Config() Config { return h.cfg }

// Access runs one demand access (read or write, write-allocate) issued by
// cpu through the hierarchy.
func (h *Hierarchy) Access(cpu topology.CPUID, addr uint64) Result {
	core := h.machine.CoreOfCPU(cpu)
	node := h.machine.NodeOfCPU(cpu)
	if core < 0 || node == topology.InvalidNode {
		panic(fmt.Sprintf("cache: access from invalid CPU %d", cpu))
	}
	line := addr >> h.lineBits

	if h.l1[core].access(addr) {
		return Result{Level: L1}
	}
	if h.l2[core].access(addr) {
		return Result{Level: L2}
	}
	if h.l3[node].access(addr) {
		// L2 fill already happened via the access calls above.
		return Result{Level: L3}
	}
	// L3 miss: line comes from DRAM. If the miss is already outstanding in
	// an LFB, the access is served by the buffer and causes no new traffic.
	if h.lfbs[core].hit(line) {
		return Result{Level: LFB}
	}
	h.lfbs[core].record(line)
	// An established prefetch stream had this line in flight before the
	// demand access arrived: latency of an LFB, bandwidth of a DRAM fetch.
	if h.pf[core].observe(line) {
		return Result{Level: LFB, Prefetched: true, DRAMTraffic: true}
	}
	return Result{Level: MEM, DRAMTraffic: true}
}

// Flush empties every cache, LFB and stream table; used between simulation
// windows so phases do not leak state into each other.
func (h *Hierarchy) Flush() {
	for i := range h.l1 {
		for j := range h.l1[i].tags {
			h.l1[i].tags[j], h.l1[i].use[j] = 0, 0
		}
		for j := range h.l2[i].tags {
			h.l2[i].tags[j], h.l2[i].use[j] = 0, 0
		}
		h.lfbs[i] = newLFB(h.cfg.LFBEntries)
		h.pf[i] = newPrefetcher(h.cfg.PrefetchStreams, h.cfg.PrefetchDepth)
	}
	for i := range h.l3 {
		for j := range h.l3[i].tags {
			h.l3[i].tags[j], h.l3[i].use[j] = 0, 0
		}
	}
}

// LineSize returns the machine's cache-line size in bytes.
func (h *Hierarchy) LineSize() int { return h.machine.LineSize() }

// SetsL1 exposes the L1 set count (used by the bandit generator to build
// conflict-miss address streams that always bypass the caches).
func (h *Hierarchy) SetsL1() int { return h.l1[0].sets }

// SetsL3 exposes the L3 set count for the same purpose.
func (h *Hierarchy) SetsL3() int { return h.l3[0].sets }
