package memsim

import (
	"testing"

	"drbw/internal/topology"
)

// The HomeFor/find memoization must be invisible: a placement mutation
// (Map/Unmap/SetPolicy/first-touch) can never let a later lookup return a
// stale node. These tests hammer the same (addr, accessor) pairs before and
// after each kind of mutation.

func memoSpace(t *testing.T) *AddressSpace {
	t.Helper()
	m := topology.XeonE5_4650()
	return NewAddressSpace(m)
}

func TestHomeForNotStaleAfterSetPolicy(t *testing.T) {
	as := memoSpace(t)
	base := uint64(0x100000)
	size := uint64(16 * 4096)
	if err := as.Map(base, size, BindTo(0), false); err != nil {
		t.Fatal(err)
	}
	// Warm the memo on every page for two accessors.
	for off := uint64(0); off < size; off += 4096 {
		for _, acc := range []topology.NodeID{0, 1} {
			if got := as.HomeFor(base+off, acc); got != 0 {
				t.Fatalf("bound page at +%#x homes on %d, want 0", off, got)
			}
		}
	}
	if err := as.SetPolicy(base, BindTo(2)); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < size; off += 4096 {
		for _, acc := range []topology.NodeID{0, 1} {
			if got := as.HomeFor(base+off, acc); got != 2 {
				t.Errorf("page at +%#x still homes on %d after rebind to 2 (stale memo)", off, got)
			}
		}
	}
	// Interleave: memoized answers must follow the round-robin layout.
	if err := as.SetPolicy(base, InterleaveOn(1, 3)); err != nil {
		t.Fatal(err)
	}
	set := []topology.NodeID{1, 3}
	for pi := uint64(0); pi < 16; pi++ {
		want := set[pi%2]
		if got := as.HomeFor(base+pi*4096, 0); got != want {
			t.Errorf("interleaved page %d homes on %d, want %d", pi, got, want)
		}
	}
}

func TestHomeForNotStaleAfterUnmapAndRemap(t *testing.T) {
	as := memoSpace(t)
	base := uint64(0x200000)
	if err := as.Map(base, 4*4096, BindTo(1), false); err != nil {
		t.Fatal(err)
	}
	if got := as.HomeFor(base, 0); got != 1 {
		t.Fatalf("homes on %d, want 1", got)
	}
	if err := as.Unmap(base); err != nil {
		t.Fatal(err)
	}
	if got := as.HomeFor(base, 0); got != topology.InvalidNode {
		t.Errorf("unmapped address homes on %d, want InvalidNode (stale memo)", got)
	}
	if as.Mapped(base) {
		t.Error("unmapped address reported mapped (stale region cache)")
	}
	// Remap the same range with a different placement.
	if err := as.Map(base, 4*4096, BindTo(3), false); err != nil {
		t.Fatal(err)
	}
	if got := as.HomeFor(base, 0); got != 3 {
		t.Errorf("remapped page homes on %d, want 3", got)
	}
}

func TestHomeForNotStaleAfterTouch(t *testing.T) {
	as := memoSpace(t)
	base := uint64(0x300000)
	if err := as.Map(base, 4*4096, FirstTouchPolicy(), false); err != nil {
		t.Fatal(err)
	}
	// NodeOf reports the page untouched; that lookup must not poison later
	// resolution.
	if got := as.NodeOf(base); got != topology.InvalidNode {
		t.Fatalf("untouched page reports node %d", got)
	}
	// Touch from node 2, then query as node 0: first-touch placement wins.
	if got := as.Touch(base, 2); got != 2 {
		t.Fatalf("Touch returned %d, want 2", got)
	}
	if got := as.HomeFor(base, 0); got != 2 {
		t.Errorf("first-touched page homes on %d, want 2 (stale memo after Touch)", got)
	}
}

// TestFirstTouchOrderRace pins the demand-zero semantics under interleaved
// accessors: whichever node resolves an untouched page first owns it, and
// every later accessor — including ones that had already warmed the memo on
// neighbouring pages — sees that owner.
func TestFirstTouchOrderRace(t *testing.T) {
	as := memoSpace(t)
	base := uint64(0x400000)
	if err := as.Map(base, 8*4096, FirstTouchPolicy(), false); err != nil {
		t.Fatal(err)
	}
	// Node 1 resolves even pages first, node 3 odd pages; then both read
	// everything.
	for pi := uint64(0); pi < 8; pi++ {
		first := topology.NodeID(1)
		if pi%2 == 1 {
			first = 3
		}
		if got := as.HomeFor(base+pi*4096, first); got != first {
			t.Fatalf("page %d first touch from %d homed on %d", pi, first, got)
		}
	}
	for pi := uint64(0); pi < 8; pi++ {
		want := topology.NodeID(1)
		if pi%2 == 1 {
			want = 3
		}
		for _, acc := range []topology.NodeID{0, 1, 2, 3} {
			if got := as.HomeFor(base+pi*4096, acc); got != want {
				t.Errorf("page %d read from node %d homes on %d, want %d (first-toucher)", pi, acc, got, want)
			}
		}
	}
	// The reverse order on a fresh region flips ownership — the resolution
	// order, not the accessor identity, decides placement.
	base2 := uint64(0x500000)
	if err := as.Map(base2, 4096, FirstTouchPolicy(), false); err != nil {
		t.Fatal(err)
	}
	if got := as.HomeFor(base2, 3); got != 3 {
		t.Fatalf("fresh page first touch from 3 homed on %d", got)
	}
	if got := as.HomeFor(base2, 1); got != 3 {
		t.Errorf("second accessor sees %d, want 3", got)
	}
}

// TestHomeForMemoAccessorKeyed checks replicated regions, where the same
// address legitimately homes differently per accessor: the memo must key on
// the accessor, not just the page.
func TestHomeForMemoAccessorKeyed(t *testing.T) {
	as := memoSpace(t)
	base := uint64(0x600000)
	if err := as.Map(base, 4096, Policy{Kind: Replicate, Nodes: []topology.NodeID{0, 2}}, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeat so the second round hits the memo
		if got := as.HomeFor(base, 0); got != 0 {
			t.Errorf("replica reader on node 0 served by %d", got)
		}
		if got := as.HomeFor(base, 2); got != 2 {
			t.Errorf("replica reader on node 2 served by %d", got)
		}
		if got := as.HomeFor(base, 1); got != 0 {
			t.Errorf("non-replica reader on node 1 served by %d, want canonical 0", got)
		}
	}
}
