// Package memsim simulates physical memory placement on a NUMA machine: a
// virtual address space divided into pages, each page resident on one NUMA
// node (or replicated across several).
//
// It stands in for the OS page tables plus libnuma. DR-BW's profiler calls
// libnuma's move_pages-style query to find the node holding a sampled
// address; AddressSpace.NodeOf is that query. The placement policies mirror
// what the paper's optimizations manipulate:
//
//   - FirstTouch — the Linux default: a page lands on the node of the first
//     thread that touches it. Serial initialization by a master thread
//     therefore concentrates all pages on one node, the classic cause of
//     remote bandwidth contention.
//   - Bind — explicit placement on one node (numa_alloc_onnode).
//   - Interleave — pages distributed round-robin across a node set
//     (numactl --interleave), the paper's baseline optimization.
//   - Replicate — a read-only region duplicated on every node in a set, the
//     paper's streamcluster optimization; each reader hits its local copy.
package memsim

import (
	"fmt"
	"sort"

	"drbw/internal/topology"
)

// PolicyKind enumerates supported page-placement policies.
type PolicyKind int

// Placement policy kinds.
const (
	FirstTouch PolicyKind = iota
	Bind
	Interleave
	Replicate
)

// String names the policy kind.
func (k PolicyKind) String() string {
	switch k {
	case FirstTouch:
		return "first-touch"
	case Bind:
		return "bind"
	case Interleave:
		return "interleave"
	case Replicate:
		return "replicate"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Policy describes how the pages of one region are placed.
type Policy struct {
	Kind PolicyKind
	// Node is the target node for Bind.
	Node topology.NodeID
	// Nodes is the node set for Interleave and Replicate. Empty means all
	// nodes of the machine.
	Nodes []topology.NodeID
}

// BindTo returns a Bind policy for node.
func BindTo(node topology.NodeID) Policy { return Policy{Kind: Bind, Node: node} }

// InterleaveAll returns an Interleave policy over every node.
func InterleaveAll() Policy { return Policy{Kind: Interleave} }

// InterleaveOn returns an Interleave policy over the given nodes.
func InterleaveOn(nodes ...topology.NodeID) Policy {
	return Policy{Kind: Interleave, Nodes: nodes}
}

// ReplicateAll returns a Replicate policy over every node.
func ReplicateAll() Policy { return Policy{Kind: Replicate} }

// FirstTouchPolicy returns the default first-touch policy.
func FirstTouchPolicy() Policy { return Policy{Kind: FirstTouch} }

// region is one mapped range of the simulated address space.
type region struct {
	base uint64
	size uint64
	pol  Policy
	// pageNodes holds the resolved node per page for FirstTouch, Bind and
	// Interleave. topology.InvalidNode marks an untouched first-touch page.
	pageNodes []topology.NodeID
	pageSize  uint64
	huge      bool
}

func (r *region) contains(addr uint64) bool {
	return addr >= r.base && addr < r.base+r.size
}

func (r *region) pageIndex(addr uint64) int {
	return int((addr - r.base) / r.pageSize)
}

// AddressSpace is a simulated virtual address space on one machine. It is
// not safe for concurrent use — even lookups update the internal memoization
// caches; the engine drives each space single-threaded.
type AddressSpace struct {
	machine *topology.Machine
	regions []*region // sorted by base, non-overlapping

	// findHit caches the region of the last successful find: access streams
	// are highly local, so the binary search is nearly always redundant.
	// Invalidated whenever the region list changes.
	findHit *region
	// homeMemo is a direct-mapped cache of recent HomeFor resolutions at page
	// granularity, keyed by (page, accessor). It is sized so the engine's
	// round-robin thread interleave — where consecutive lookups come from
	// different threads on different pages — still hits on each thread's
	// current page. Entries are validated against gen, which every placement
	// mutation (Map/Unmap/SetPolicy/first-touch) bumps, so a stale node can
	// never be served.
	homeMemo [homeMemoSize]homeMemoEntry
	gen      uint64
}

const homeMemoSize = 128 // power of two

type homeMemoEntry struct {
	gen        uint64
	start, end uint64 // page-aligned [start, end) within one region
	accessor   topology.NodeID
	node       topology.NodeID
}

func homeMemoSlot(addr uint64, accessor topology.NodeID) uint64 {
	return (addr>>12 ^ uint64(accessor)*0x9e3779b9) & (homeMemoSize - 1)
}

// invalidate drops every memoized lookup; called on any placement mutation.
func (as *AddressSpace) invalidate() {
	as.findHit = nil
	as.gen++
}

// NewAddressSpace returns an empty address space for machine m.
func NewAddressSpace(m *topology.Machine) *AddressSpace {
	return &AddressSpace{machine: m, gen: 1}
}

// Machine returns the machine this address space belongs to.
func (as *AddressSpace) Machine() *topology.Machine { return as.machine }

// nodeSet resolves the node set of a policy, defaulting to all nodes.
func (as *AddressSpace) nodeSet(p Policy) []topology.NodeID {
	if len(p.Nodes) > 0 {
		return p.Nodes
	}
	all := make([]topology.NodeID, as.machine.Nodes())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	return all
}

// Map creates a new region [base, base+size) with the given placement. The
// region must be page-aligned and must not overlap an existing region. Huge
// regions use the machine's huge-page size (the bandit micro benchmark maps
// huge pages to get a deterministic page-offset→cache-set mapping).
func (as *AddressSpace) Map(base, size uint64, pol Policy, huge bool) error {
	pageSize := uint64(as.machine.PageSize())
	if huge {
		pageSize = uint64(as.machine.HugePageSize())
	}
	if size == 0 {
		return fmt.Errorf("memsim: cannot map empty region at %#x", base)
	}
	if base%pageSize != 0 {
		return fmt.Errorf("memsim: base %#x not aligned to page size %d", base, pageSize)
	}
	if pol.Kind == Bind {
		if pol.Node < 0 || int(pol.Node) >= as.machine.Nodes() {
			return fmt.Errorf("memsim: bind to invalid node %d", pol.Node)
		}
	}
	for _, n := range pol.Nodes {
		if n < 0 || int(n) >= as.machine.Nodes() {
			return fmt.Errorf("memsim: policy references invalid node %d", n)
		}
	}
	// Round the region size up to whole pages.
	pages := int((size + pageSize - 1) / pageSize)
	r := &region{base: base, size: uint64(pages) * pageSize, pol: pol, pageSize: pageSize, huge: huge}

	idx := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].base >= base })
	if idx > 0 {
		prev := as.regions[idx-1]
		if prev.base+prev.size > base {
			return fmt.Errorf("memsim: region %#x+%#x overlaps existing %#x+%#x", base, size, prev.base, prev.size)
		}
	}
	if idx < len(as.regions) {
		next := as.regions[idx]
		if base+r.size > next.base {
			return fmt.Errorf("memsim: region %#x+%#x overlaps existing %#x+%#x", base, size, next.base, next.size)
		}
	}

	switch pol.Kind {
	case FirstTouch:
		r.pageNodes = make([]topology.NodeID, pages)
		for i := range r.pageNodes {
			r.pageNodes[i] = topology.InvalidNode
		}
	case Bind:
		r.pageNodes = make([]topology.NodeID, pages)
		for i := range r.pageNodes {
			r.pageNodes[i] = pol.Node
		}
	case Interleave:
		set := as.nodeSet(pol)
		r.pageNodes = make([]topology.NodeID, pages)
		for i := range r.pageNodes {
			r.pageNodes[i] = set[i%len(set)]
		}
	case Replicate:
		// No per-page node: resolved against the accessor at access time.
	default:
		return fmt.Errorf("memsim: unknown policy kind %d", pol.Kind)
	}

	as.regions = append(as.regions, nil)
	copy(as.regions[idx+1:], as.regions[idx:])
	as.regions[idx] = r
	as.invalidate()
	return nil
}

// Unmap removes the region starting exactly at base.
func (as *AddressSpace) Unmap(base uint64) error {
	idx := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].base >= base })
	if idx == len(as.regions) || as.regions[idx].base != base {
		return fmt.Errorf("memsim: no region mapped at %#x", base)
	}
	as.regions = append(as.regions[:idx], as.regions[idx+1:]...)
	as.invalidate()
	return nil
}

// find returns the region containing addr, or nil.
func (as *AddressSpace) find(addr uint64) *region {
	if r := as.findHit; r != nil && r.contains(addr) {
		return r
	}
	idx := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].base > addr })
	if idx == 0 {
		return nil
	}
	r := as.regions[idx-1]
	if !r.contains(addr) {
		return nil
	}
	as.findHit = r
	return r
}

// Mapped reports whether addr falls inside any mapped region.
func (as *AddressSpace) Mapped(addr uint64) bool { return as.find(addr) != nil }

// Touch resolves first-touch placement: if the page holding addr is an
// unresolved first-touch page, it becomes resident on toucher's node. For
// all other policies Touch is a no-op. It returns the page's node after the
// touch (for Replicate: the toucher's node, i.e. the local copy).
func (as *AddressSpace) Touch(addr uint64, toucher topology.NodeID) topology.NodeID {
	r := as.find(addr)
	if r == nil {
		return topology.InvalidNode
	}
	if r.pol.Kind == Replicate {
		return toucher
	}
	pi := r.pageIndex(addr)
	if r.pol.Kind == FirstTouch && r.pageNodes[pi] == topology.InvalidNode {
		r.pageNodes[pi] = toucher
		as.gen++
	}
	return r.pageNodes[pi]
}

// NodeOf is the libnuma-style query: which node holds addr? Untouched
// first-touch pages report InvalidNode (libnuma reports such pages as not
// present). Replicated pages report the first node of the replica set, which
// is what a page-table query would surface for the canonical copy.
func (as *AddressSpace) NodeOf(addr uint64) topology.NodeID {
	r := as.find(addr)
	if r == nil {
		return topology.InvalidNode
	}
	if r.pol.Kind == Replicate {
		return as.nodeSet(r.pol)[0]
	}
	return r.pageNodes[r.pageIndex(addr)]
}

// HomeFor resolves the node that actually serves an access to addr issued
// from accessor's node. It differs from NodeOf only for replicated regions,
// where each accessor reads its local replica (if the accessor's node is in
// the replica set).
func (as *AddressSpace) HomeFor(addr uint64, accessor topology.NodeID) topology.NodeID {
	slot := &as.homeMemo[homeMemoSlot(addr, accessor)]
	if slot.gen == as.gen && slot.accessor == accessor && addr >= slot.start && addr < slot.end {
		return slot.node
	}
	return as.homeForSlow(addr, accessor, slot)
}

// homeForSlow resolves a memo miss and refills the caller's slot. Split out
// so the memo-hit path of HomeFor inlines into the engine's access loop.
func (as *AddressSpace) homeForSlow(addr uint64, accessor topology.NodeID, slot *homeMemoEntry) topology.NodeID {
	r := as.find(addr)
	if r == nil {
		return topology.InvalidNode
	}
	var node topology.NodeID
	if r.pol.Kind == Replicate {
		node = as.nodeSet(r.pol)[0]
		for _, n := range as.nodeSet(r.pol) {
			if n == accessor {
				node = accessor
				break
			}
		}
	} else {
		pi := r.pageIndex(addr)
		node = r.pageNodes[pi]
		if node == topology.InvalidNode {
			// Access to an untouched first-touch page allocates it on the
			// accessor's node, exactly like the OS demand-zero path. No memo
			// entry can be stale after this: an untouched page has never been
			// resolved, so nothing referencing it was ever cached.
			r.pageNodes[pi] = accessor
			node = accessor
		}
	}
	start := r.base + uint64(r.pageIndex(addr))*r.pageSize
	slot.gen = as.gen
	slot.accessor = accessor
	slot.start, slot.end = start, start+r.pageSize
	slot.node = node
	return node
}

// Reader is a read-only resolver over a frozen AddressSpace. Unlike
// HomeFor it never mutates the space — not even its memo caches — so any
// number of Readers may resolve concurrently from different goroutines, as
// long as nothing mutates the space (Map/Unmap/SetPolicy/Touch/HomeFor)
// while they are in use. The parallel window execution creates one Reader
// per thread group, records would-be first touches locally, and commits the
// arbitrated winners through Touch after the groups join.
//
// A Reader caches region and page lookups privately; it must be discarded
// after any placement mutation.
type Reader struct {
	as      *AddressSpace
	findHit *region
	memo    [homeMemoSize]readerMemoEntry
}

// readerMemoEntry caches one resolved (page, accessor) pair. end == 0 marks
// an empty slot (unmapped addresses are never memoized). node is
// topology.InvalidNode for a first-touch page that was untouched at read
// time.
type readerMemoEntry struct {
	start, end uint64
	accessor   topology.NodeID
	node       topology.NodeID
}

// NewReader returns a read-only resolver over the space's current placement.
func (as *AddressSpace) NewReader() *Reader { return &Reader{as: as} }

// find is AddressSpace.find with the last-hit cache kept on the Reader, so
// concurrent Readers never write shared state.
func (rd *Reader) find(addr uint64) *region {
	if r := rd.findHit; r != nil && r.contains(addr) {
		return r
	}
	regions := rd.as.regions
	idx := sort.Search(len(regions), func(i int) bool { return regions[i].base > addr })
	if idx == 0 {
		return nil
	}
	r := regions[idx-1]
	if !r.contains(addr) {
		return nil
	}
	rd.findHit = r
	return r
}

// Resolve reports which node serves an access to addr issued from
// accessor's node, like HomeFor, but without resolving first touches: an
// untouched first-touch page reports node == topology.InvalidNode and its
// page bounds, leaving the placement decision to the caller. An unmapped
// addr reports (InvalidNode, 0, 0).
func (rd *Reader) Resolve(addr uint64, accessor topology.NodeID) (node topology.NodeID, start, end uint64) {
	slot := &rd.memo[homeMemoSlot(addr, accessor)]
	if slot.end != 0 && slot.accessor == accessor && addr >= slot.start && addr < slot.end {
		return slot.node, slot.start, slot.end
	}
	return rd.resolveSlow(addr, accessor, slot)
}

// resolveSlow handles a memo miss and refills the caller's slot; split out
// so the memo-hit path of Resolve inlines into the engine's access loop.
func (rd *Reader) resolveSlow(addr uint64, accessor topology.NodeID, slot *readerMemoEntry) (topology.NodeID, uint64, uint64) {
	r := rd.find(addr)
	if r == nil {
		return topology.InvalidNode, 0, 0
	}
	var node topology.NodeID
	if r.pol.Kind == Replicate {
		set := rd.as.nodeSet(r.pol)
		node = set[0]
		for _, n := range set {
			if n == accessor {
				node = accessor
				break
			}
		}
	} else {
		node = r.pageNodes[r.pageIndex(addr)]
	}
	start := r.base + uint64(r.pageIndex(addr))*r.pageSize
	slot.accessor = accessor
	slot.start, slot.end = start, start+r.pageSize
	slot.node = node
	return node, slot.start, slot.end
}

// PolicyOf returns the placement policy of the region containing addr.
func (as *AddressSpace) PolicyOf(addr uint64) (Policy, bool) {
	r := as.find(addr)
	if r == nil {
		return Policy{}, false
	}
	return r.pol, true
}

// SetPolicy rebinds the region starting at base to a new policy, migrating
// its pages accordingly. This models numa_migrate_pages / a re-allocation
// with a different placement, which is how the optimizer applies interleave,
// co-locate and replicate fixes without rebuilding the workload.
func (as *AddressSpace) SetPolicy(base uint64, pol Policy) error {
	idx := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].base >= base })
	if idx == len(as.regions) || as.regions[idx].base != base {
		return fmt.Errorf("memsim: no region mapped at %#x", base)
	}
	r := as.regions[idx]
	size := r.size
	huge := r.huge
	if err := as.Unmap(base); err != nil {
		return err
	}
	return as.Map(base, size, pol, huge)
}

// Regions returns the number of mapped regions.
func (as *AddressSpace) Regions() int { return len(as.regions) }

// RegionBases returns the base address of every mapped region in address
// order. numactl-style whole-process policies (interleave everything,
// including static data) iterate these.
func (as *AddressSpace) RegionBases() []uint64 {
	out := make([]uint64, len(as.regions))
	for i, r := range as.regions {
		out[i] = r.base
	}
	return out
}

// ResidencyHistogram counts the resolved pages per node across all regions;
// useful for asserting placement in tests and reports. Unresolved
// first-touch pages and replicated regions are not counted.
func (as *AddressSpace) ResidencyHistogram() map[topology.NodeID]int {
	h := make(map[topology.NodeID]int)
	for _, r := range as.regions {
		for _, n := range r.pageNodes {
			if n != topology.InvalidNode {
				h[n]++
			}
		}
	}
	return h
}
