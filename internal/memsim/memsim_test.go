package memsim

import (
	"testing"
	"testing/quick"

	"drbw/internal/topology"
)

const mb = 1 << 20

func space(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(topology.Uniform(4, 4))
}

func TestMapValidation(t *testing.T) {
	as := space(t)
	if err := as.Map(0x1000, 0, BindTo(0), false); err == nil {
		t.Error("empty region accepted")
	}
	if err := as.Map(0x1001, 4096, BindTo(0), false); err == nil {
		t.Error("unaligned base accepted")
	}
	if err := as.Map(0x1000, 4096, BindTo(99), false); err == nil {
		t.Error("bind to nonexistent node accepted")
	}
	if err := as.Map(0x1000, 4096, InterleaveOn(0, 17), false); err == nil {
		t.Error("interleave over nonexistent node accepted")
	}
	if err := as.Map(0x10000, mb, BindTo(1), false); err != nil {
		t.Fatalf("valid map failed: %v", err)
	}
	if err := as.Map(0x10000+4096, 4096, BindTo(1), false); err == nil {
		t.Error("overlapping map accepted")
	}
	if err := as.Map(0x0, 0x10000+4096, BindTo(1), false); err == nil {
		t.Error("map overlapping from below accepted")
	}
}

func TestBindPlacement(t *testing.T) {
	as := space(t)
	if err := as.Map(0x100000, mb, BindTo(2), false); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < mb; off += 4096 {
		if n := as.NodeOf(0x100000 + off); n != 2 {
			t.Fatalf("page at +%#x on node %d, want 2", off, n)
		}
	}
	if as.NodeOf(0x100000+mb) != topology.InvalidNode {
		t.Error("address past region should be unmapped")
	}
	if as.NodeOf(0xfffff) != topology.InvalidNode {
		t.Error("address before region should be unmapped")
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	as := space(t)
	if err := as.Map(0x100000, 16*4096, InterleaveAll(), false); err != nil {
		t.Fatal(err)
	}
	counts := make(map[topology.NodeID]int)
	for p := 0; p < 16; p++ {
		addr := uint64(0x100000 + p*4096)
		n := as.NodeOf(addr)
		counts[n]++
		if want := topology.NodeID(p % 4); n != want {
			t.Fatalf("page %d on node %d, want %d", p, n, want)
		}
	}
	for n, c := range counts {
		if c != 4 {
			t.Errorf("node %d holds %d pages, want 4", n, c)
		}
	}
}

func TestInterleaveOnSubset(t *testing.T) {
	as := space(t)
	if err := as.Map(0x100000, 8*4096, InterleaveOn(1, 3), false); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		n := as.NodeOf(uint64(0x100000 + p*4096))
		if n != 1 && n != 3 {
			t.Fatalf("page %d on node %d, want 1 or 3", p, n)
		}
	}
}

func TestFirstTouchResolution(t *testing.T) {
	as := space(t)
	if err := as.Map(0x100000, 4*4096, FirstTouchPolicy(), false); err != nil {
		t.Fatal(err)
	}
	if n := as.NodeOf(0x100000); n != topology.InvalidNode {
		t.Fatalf("untouched page resolved to node %d", n)
	}
	if n := as.Touch(0x100000, 3); n != 3 {
		t.Fatalf("Touch returned %d, want 3", n)
	}
	// Second touch from a different node must not migrate the page.
	if n := as.Touch(0x100000, 1); n != 3 {
		t.Fatalf("second touch moved page to %d", n)
	}
	if n := as.NodeOf(0x100000); n != 3 {
		t.Fatalf("NodeOf after touch = %d, want 3", n)
	}
	// Pages are independent: the next page is still untouched.
	if n := as.NodeOf(0x100000 + 4096); n != topology.InvalidNode {
		t.Fatalf("neighbouring page already resolved to %d", n)
	}
}

func TestHomeForDemandZero(t *testing.T) {
	as := space(t)
	if err := as.Map(0x100000, 4096, FirstTouchPolicy(), false); err != nil {
		t.Fatal(err)
	}
	// An access through HomeFor acts as the first touch.
	if n := as.HomeFor(0x100000, 2); n != 2 {
		t.Fatalf("HomeFor on untouched page = %d, want 2", n)
	}
	if n := as.NodeOf(0x100000); n != 2 {
		t.Fatalf("page not persisted on node 2, got %d", n)
	}
}

func TestReplicateServesLocal(t *testing.T) {
	as := space(t)
	if err := as.Map(0x100000, mb, ReplicateAll(), false); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		if got := as.HomeFor(0x100000, topology.NodeID(n)); got != topology.NodeID(n) {
			t.Fatalf("accessor on node %d served from node %d", n, got)
		}
	}
	// NodeOf reports the canonical (first) replica.
	if got := as.NodeOf(0x100000); got != 0 {
		t.Fatalf("canonical replica on node %d, want 0", got)
	}
}

func TestReplicateSubsetFallsBack(t *testing.T) {
	as := space(t)
	pol := Policy{Kind: Replicate, Nodes: []topology.NodeID{1, 2}}
	if err := as.Map(0x100000, mb, pol, false); err != nil {
		t.Fatal(err)
	}
	if got := as.HomeFor(0x100000, 3); got != 1 {
		t.Fatalf("accessor outside replica set served from %d, want canonical 1", got)
	}
	if got := as.HomeFor(0x100000, 2); got != 2 {
		t.Fatalf("accessor in replica set served from %d, want local 2", got)
	}
}

func TestSetPolicyMigrates(t *testing.T) {
	as := space(t)
	if err := as.Map(0x100000, 8*4096, BindTo(0), false); err != nil {
		t.Fatal(err)
	}
	if err := as.SetPolicy(0x100000, InterleaveAll()); err != nil {
		t.Fatal(err)
	}
	h := as.ResidencyHistogram()
	for n := topology.NodeID(0); n < 4; n++ {
		if h[n] != 2 {
			t.Fatalf("after migration node %d holds %d pages, want 2: %v", n, h[n], h)
		}
	}
	if err := as.SetPolicy(0x999000, BindTo(0)); err == nil {
		t.Error("SetPolicy on unmapped base accepted")
	}
}

func TestUnmap(t *testing.T) {
	as := space(t)
	if err := as.Map(0x100000, 4096, BindTo(0), false); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(0x100000); err != nil {
		t.Fatal(err)
	}
	if as.Mapped(0x100000) {
		t.Error("address still mapped after Unmap")
	}
	if err := as.Unmap(0x100000); err == nil {
		t.Error("double unmap accepted")
	}
}

func TestHugePageGranularity(t *testing.T) {
	as := space(t)
	huge := uint64(as.Machine().HugePageSize())
	if err := as.Map(huge, 2*huge, InterleaveAll(), true); err != nil {
		t.Fatal(err)
	}
	// All addresses inside one huge page resolve to the same node.
	n0 := as.NodeOf(huge)
	if got := as.NodeOf(huge + huge - 64); got != n0 {
		t.Fatalf("same huge page split across nodes %d and %d", n0, got)
	}
	if got := as.NodeOf(2 * huge); got == n0 {
		t.Fatalf("adjacent huge pages both on node %d under interleave", n0)
	}
}

func TestPolicyKindString(t *testing.T) {
	for k, want := range map[PolicyKind]string{
		FirstTouch: "first-touch", Bind: "bind", Interleave: "interleave",
		Replicate: "replicate", PolicyKind(9): "PolicyKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("PolicyKind %d = %q, want %q", int(k), got, want)
		}
	}
}

// Property: under interleave over all nodes, page residency is balanced to
// within one page for any region size.
func TestInterleaveBalanceProperty(t *testing.T) {
	f := func(pages uint16) bool {
		p := int(pages%512) + 1
		as := NewAddressSpace(topology.Uniform(4, 2))
		if err := as.Map(0x100000, uint64(p)*4096, InterleaveAll(), false); err != nil {
			return false
		}
		h := as.ResidencyHistogram()
		min, max := p, 0
		for n := topology.NodeID(0); n < 4; n++ {
			if h[n] < min {
				min = h[n]
			}
			if h[n] > max {
				max = h[n]
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Touch is idempotent and NodeOf agrees with the first toucher.
func TestFirstTouchProperty(t *testing.T) {
	f := func(pageSel uint8, node0, node1 uint8) bool {
		as := NewAddressSpace(topology.Uniform(4, 2))
		if err := as.Map(0x100000, 16*4096, FirstTouchPolicy(), false); err != nil {
			return false
		}
		addr := uint64(0x100000 + int(pageSel%16)*4096)
		a := topology.NodeID(node0 % 4)
		b := topology.NodeID(node1 % 4)
		first := as.Touch(addr, a)
		second := as.Touch(addr, b)
		return first == a && second == a && as.NodeOf(addr) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
