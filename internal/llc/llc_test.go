package llc

import (
	"testing"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
)

func TestModeString(t *testing.T) {
	if Fit.String() != "fit" || Thrash.String() != "thrash" {
		t.Error("mode names wrong")
	}
}

func TestTrainingSetShape(t *testing.T) {
	set := TrainingSet()
	if len(set) != 81 {
		t.Fatalf("training set has %d runs, want 81 (9 points x 3 regimes x 3 reps)", len(set))
	}
	fit, thrash := 0, 0
	seeds := map[uint64]bool{}
	for _, inst := range set {
		if inst.Mode == Fit {
			fit++
		} else {
			thrash++
		}
		if seeds[inst.Cfg.Seed] {
			t.Fatalf("duplicate seed %d", inst.Cfg.Seed)
		}
		seeds[inst.Cfg.Seed] = true
	}
	if fit != 2*thrash {
		t.Errorf("class mix: %d fit / %d thrash, want 2:1", fit, thrash)
	}
}

// TestThrashingEmergesFromSharedL3 verifies the phenomenon itself: the same
// per-thread working set hits when co-runners are absent and misses when
// the socket overflows.
func TestThrashingEmergesFromSharedL3(t *testing.T) {
	m := topology.XeonE5_4650()
	// 8 threads x 550 KB on one socket = 4.4 MB >> 2 MB scaled L3.
	thrash := Wset(550 * 1024)
	samples, weight, _, err := run(m, thrash, program.Config{Threads: 8, Nodes: 1, Input: "default", Seed: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	vThrash := Extract(samples, 0, weight)

	// The same total pressure split across 4 sockets: 2 threads x 550 KB =
	// 1.1 MB per socket, comfortably inside.
	fit := Wset(550 * 1024)
	samples2, weight2, _, err := run(m, fit, program.Config{Threads: 8, Nodes: 4, Input: "default", Seed: 2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	vFit := Extract(samples2, 0, weight2)

	if vThrash[2] < 0.5 {
		t.Errorf("overflowing socket miss ratio %.2f, want > 0.5", vThrash[2])
	}
	if vFit[2] > 0.3 {
		t.Errorf("fitting socket miss ratio %.2f, want < 0.3", vFit[2])
	}
}

func TestTrainAndClassify(t *testing.T) {
	m := topology.XeonE5_4650()
	det, err := Train(m, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := det.CrossValidate(5)
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Accuracy(); acc < 0.85 {
		t.Errorf("LLC classifier CV accuracy %.2f", acc)
	}

	// Analyze a thrashing run: every occupied socket should be flagged and
	// the per-thread wset objects share the CF roughly evenly.
	res, err := det.Analyze(m, Wset(500*1024), program.Config{Threads: 16, Nodes: 2, Input: "default", Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("thrashing run not detected")
	}
	if len(res.Contended) != 2 {
		t.Errorf("contended sockets %v, want both", res.Contended)
	}
	if len(res.Report.Overall) < 8 {
		t.Errorf("CF ranking has %d objects", len(res.Report.Overall))
	}

	// And a fitting run stays clean.
	resFit, err := det.Analyze(m, Wset(64*1024), program.Config{Threads: 8, Nodes: 2, Input: "default", Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if resFit.Detected() {
		t.Errorf("fitting run flagged on sockets %v", resFit.Contended)
	}
}

func TestExtractEmptySocket(t *testing.T) {
	v := Extract(nil, 0, 1)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("feature %d = %g on empty batch", i, x)
		}
	}
	// Samples from another socket only.
	s := []pebs.Sample{{SrcNode: 1, Level: cache.L3, Latency: 40}}
	if v := Extract(s, 0, 1); v[6] != 0 {
		t.Error("foreign-socket samples counted")
	}
}

func TestCacheConfigDisablesPrefetch(t *testing.T) {
	cfg := CacheConfig()
	if cfg.PrefetchDepth >= 0 {
		t.Error("LLC experiment must disable the prefetcher")
	}
	if cfg.L3Size != ScaledL3 {
		t.Error("scaled L3 size mismatch")
	}
}
