// Package llc extends DR-BW beyond memory bandwidth, to shared last-level
// cache contention — the first item on the paper's future-work list
// (Section IX: "contention in ... different level of caches").
//
// The methodology is the paper's, retargeted:
//
//   - Micro benchmarks with known behaviour. Each "wset" thread loops over
//     a private working set. In "fit" mode the per-socket sum of working
//     sets stays comfortably inside the shared L3; in "thrash" mode every
//     thread's set fits alone but the socket's sum overflows the cache, so
//     co-running threads evict each other — the classic capacity-contention
//     pathology. The simulation's per-socket shared L3 with LRU produces
//     the real phenomenon, not a label: the same thread thrashes or hits
//     depending only on its neighbours.
//
//   - Per-socket feature vectors from the same PEBS samples: L3 hit/miss
//     counts, the miss ratio, DRAM sample counts and latencies. (Remote
//     traffic plays no role here; the training placements are co-located.)
//
//   - A CART decision tree classifies each socket as "fit" or "thrash",
//     and the diagnoser charges a Contribution Fraction to the data
//     objects behind the misses on contended sockets.
//
// Cache-scale working sets cannot be swept by the default simulation
// window, so this experiment runs against a scaled LLC (2 MB per socket)
// with proportional working sets and a longer window — the contention
// physics are identical, only the byte counts shrink.
package llc

import (
	"fmt"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/diagnose"
	"drbw/internal/dtree"
	"drbw/internal/engine"
	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

const (
	kb = 1 << 10
	mb = 1 << 20
)

// ScaledL3 is the LLC size used by the cache-contention experiment.
const ScaledL3 = 2 * mb

// CacheConfig returns the scaled hierarchy every llc run uses.
func CacheConfig() cache.Config {
	return cache.Config{
		L1Size: 16 << 10, L1Assoc: 4,
		L2Size: 64 << 10, L2Assoc: 8,
		L3Size: ScaledL3, L3Assoc: 16,
		LFBEntries:    10,
		PrefetchDepth: -1, // disabled: streaming prefetch would mask capacity misses
	}
}

// EngineConfig returns a window long enough to sweep cache-scale working
// sets twice.
func EngineConfig(seed uint64) engine.Config {
	return engine.Config{Window: 65536, Warmup: 32768, ReservoirSize: 2048, Seed: seed}
}

// Mode labels a training run.
type Mode int

// Cache behaviour classes.
const (
	Fit    Mode = iota // per-socket working sets fit the shared L3
	Thrash             // co-running threads overflow and evict each other
)

// String names the mode.
func (m Mode) String() string {
	if m == Fit {
		return "fit"
	}
	return "thrash"
}

// Wset builds the working-set mini-program: every thread loops over its own
// wsBytes-sized array at line granularity. Placement is co-located, so any
// slowdown is cache contention, never NUMA traffic.
func Wset(wsBytes uint64) program.Builder {
	return program.Builder{
		Name:   fmt.Sprintf("wset-%dKB", wsBytes/kb),
		Inputs: []string{"default"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			bind, err := engine.EvenBinding(m, cfg.Threads, cfg.Nodes)
			if err != nil {
				return nil, err
			}
			as := memsim.NewAddressSpace(m)
			heap := alloc.NewHeap(as, 0x10000000)
			p := &program.Program{
				Machine: m, Space: as, Heap: heap, Binding: bind,
				CacheConfig: CacheConfig(),
			}
			ph := trace.Phase{Name: "sweep"}
			for t := 0; t < cfg.Threads; t++ {
				obj, err := heap.Malloc(fmt.Sprintf("wset_%d", t), wsBytes,
					alloc.Site{Func: "worker", File: "wset.c", Line: 30 + t},
					memsim.FirstTouchPolicy())
				if err != nil {
					return nil, err
				}
				heap.TouchAll(obj, m.NodeOfCPU(bind[t]))
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream:     &trace.Seq{Base: heap.Object(obj).Base, Len: wsBytes, Elem: 64},
					Ops:        1.2e6,
					MLP:        4,
					WorkCycles: 2,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// Instance is one labeled training run.
type Instance struct {
	Builder program.Builder
	Cfg     program.Config
	Mode    Mode
}

// TrainingSet builds the labeled runs: per thread-count, working sets sized
// so the socket sum lands well below (fit) or well above (thrash) the
// scaled L3.
func TrainingSet() []Instance {
	var out []Instance
	seed := uint64(31000)
	type point struct {
		threads, nodes int
	}
	points := []point{
		{2, 1}, {4, 1}, {8, 1}, {4, 2}, {8, 2}, {16, 2}, {8, 4}, {16, 4}, {32, 4},
	}
	for rep := 0; rep < 3; rep++ {
		for _, pt := range points {
			perSocket := pt.threads / pt.nodes
			// Three working-set regimes per point: L2-resident (fit with no
			// L3 activity at all — without these the tree can mistake "few
			// L3 hits" for thrashing), L3-resident (socket sum ~45% of the
			// shared cache), and overflowing (sum ~220%, each thread's set
			// alone at most ~70%).
			l2WS := uint64(24 * kb)
			fitWS := uint64(float64(ScaledL3) * 0.45 / float64(perSocket))
			thrashWS := uint64(float64(ScaledL3) * 2.2 / float64(perSocket))
			maxWS := uint64(ScaledL3 * 7 / 10)
			if thrashWS > maxWS {
				thrashWS = maxWS
			}
			fitWS = fitWS &^ 4095
			thrashWS = thrashWS &^ 4095
			if fitWS < 8*kb {
				fitWS = 8 * kb
			}
			for _, inst := range []Instance{
				{Builder: Wset(l2WS), Mode: Fit},
				{Builder: Wset(fitWS), Mode: Fit},
				{Builder: Wset(thrashWS), Mode: Thrash},
			} {
				inst.Cfg = program.Config{Threads: pt.threads, Nodes: pt.nodes, Input: "default", Seed: seed}
				seed++
				out = append(out, inst)
			}
		}
	}
	return out
}

// NumFeatures is the size of the per-socket cache-contention vector.
const NumFeatures = 7

// FeatureNames describes the vector.
var FeatureNames = [NumFeatures]string{
	"num L3 hit samples",
	"num L3 miss samples (LFB+DRAM)",
	"L3 miss ratio",
	"num local dram samples",
	"avg local dram latency",
	"avg latency",
	"total samples",
}

// Vector is one per-socket feature vector.
type Vector [NumFeatures]float64

// Extract computes the vector for socket node from a run's samples.
func Extract(samples []pebs.Sample, node topology.NodeID, weight float64) Vector {
	if weight <= 0 {
		weight = 1
	}
	var v Vector
	var batch, l3hit, l3miss, localDRAM float64
	var latSum, localLat float64
	for _, s := range samples {
		if s.SrcNode != node {
			continue
		}
		batch++
		latSum += s.Latency
		switch {
		case s.Level == cache.L3:
			l3hit++
		case s.Level == cache.LFB || s.Level == cache.MEM:
			l3miss++
		}
		if s.LocalDRAM() {
			localDRAM++
			localLat += s.Latency
		}
	}
	if batch == 0 {
		return v
	}
	v[0] = l3hit * weight
	v[1] = l3miss * weight
	if l3hit+l3miss > 0 {
		v[2] = l3miss / (l3hit + l3miss)
	}
	v[3] = localDRAM * weight
	if localDRAM > 0 {
		v[4] = localLat / localDRAM
	}
	v[5] = latSum / batch
	v[6] = batch * weight
	return v
}

// collectorConfig mirrors the bandwidth detector's sampling setup.
func collectorConfig() pebs.Config {
	return pebs.Config{Period: pebs.DefaultPeriod, MaxKept: 120000}
}

// Detector is a trained cache-contention classifier.
type Detector struct {
	Tree    *dtree.Tree
	Dataset *dtree.Dataset
	// MinSamples is the minimum per-socket batch to classify.
	MinSamples int
}

// Train collects the training set and fits the tree.
func Train(m *topology.Machine, quick bool, seed uint64) (*Detector, error) {
	set := TrainingSet()
	if quick {
		// Stride 2 is coprime with the 3-regime cadence, so the reduced set
		// still covers L2-resident, L3-resident and overflowing runs.
		var reduced []Instance
		for i := 0; i < len(set); i += 2 {
			reduced = append(reduced, set[i])
		}
		set = reduced
	}
	ds := &dtree.Dataset{
		FeatureNames: FeatureNames[:],
		ClassNames:   []string{Fit.String(), Thrash.String()},
	}
	for i, inst := range set {
		samples, weight, _, err := run(m, inst.Builder, inst.Cfg, seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("llc: training instance %d: %w", i, err)
		}
		// One example per *occupied* socket.
		occupied := map[topology.NodeID]bool{}
		for _, s := range samples {
			occupied[s.SrcNode] = true
		}
		for node := range occupied {
			vec := Extract(samples, node, weight)
			if vec[6] < 25 {
				continue
			}
			ds.Examples = append(ds.Examples, dtree.Example{X: vec[:], Y: int(inst.Mode)})
		}
	}
	tree, err := dtree.Train(ds, dtree.Config{MaxDepth: 4, MinLeaf: 3})
	if err != nil {
		return nil, err
	}
	return &Detector{Tree: tree, Dataset: ds, MinSamples: 25}, nil
}

func run(m *topology.Machine, b program.Builder, cfg program.Config, seed uint64) ([]pebs.Sample, float64, *program.Program, error) {
	p, err := b.New(m, cfg)
	if err != nil {
		return nil, 0, nil, err
	}
	// Every llc run uses the scaled hierarchy, whatever the builder set.
	p.CacheConfig = CacheConfig()
	col := pebs.NewCollector(collectorConfig(), seed+3)
	ecfg := EngineConfig(seed + 5)
	ecfg.Collector = col
	if _, err := p.Run(ecfg); err != nil {
		return nil, 0, nil, err
	}
	return col.Samples(), col.Weight(), p, nil
}

// Result reports one analyzed run.
type Result struct {
	// Contended lists sockets classified as thrashing.
	Contended []topology.NodeID
	// Report ranks objects by CF over the contended sockets' L3-miss
	// samples.
	Report *diagnose.Report
}

// Detected reports whether any socket thrashes.
func (r *Result) Detected() bool { return len(r.Contended) > 0 }

// Analyze runs a program under the scaled-LLC configuration and classifies
// each socket; on detection, L3-miss samples on contended sockets are
// attributed to data objects.
func (d *Detector) Analyze(m *topology.Machine, b program.Builder, cfg program.Config) (*Result, error) {
	samples, weight, p, err := run(m, b, cfg, cfg.Seed+77)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for n := 0; n < m.Nodes(); n++ {
		node := topology.NodeID(n)
		vec := Extract(samples, node, weight)
		if vec[6] < float64(d.MinSamples) {
			continue
		}
		v := vec
		if d.Tree.Predict(v[:]) == int(Thrash) {
			res.Contended = append(res.Contended, node)
		}
	}
	if len(res.Contended) == 0 {
		res.Report = &diagnose.Report{}
		return res, nil
	}
	// Attribute L3-miss samples on the contended sockets: reuse the CF
	// machinery with the sockets' local channels.
	var channels []topology.Channel
	for _, n := range res.Contended {
		channels = append(channels, topology.Channel{Src: n, Dst: n})
	}
	var missSamples []pebs.Sample
	for _, s := range samples {
		if s.Level == cache.LFB || s.Level == cache.MEM || s.Level == cache.L3 {
			missSamples = append(missSamples, s)
		}
	}
	res.Report = diagnose.Analyze(p.Heap, missSamples, channels, weight)
	return res, nil
}

// CrossValidate reports k-fold accuracy of the trained dataset.
func (d *Detector) CrossValidate(k int) (*dtree.ConfusionMatrix, error) {
	return dtree.CrossValidate(d.Dataset, dtree.Config{MaxDepth: 4, MinLeaf: 3}, k, 42)
}
