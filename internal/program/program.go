// Package program defines the runnable unit of the reproduction: a fully
// materialized benchmark instance — machine, address space, heap objects,
// thread binding and phases — ready to execute on the engine.
//
// The paper evaluates every benchmark under Tt-Nn configurations (t threads
// evenly spread over n NUMA nodes, pinned to cores); Config carries that
// plus the input-size name. Builders (in internal/micro and
// internal/workloads) construct a fresh Program per run so placement state
// (first-touch resolution) never leaks between runs.
package program

import (
	"fmt"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/engine"
	"drbw/internal/memsim"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// Config selects one case of a benchmark.
type Config struct {
	Threads int
	Nodes   int
	Input   string
	Seed    uint64
}

// Label renders the paper's Tt-Nn notation.
func (c Config) Label() string { return fmt.Sprintf("T%d-N%d", c.Threads, c.Nodes) }

// String includes the input name.
func (c Config) String() string {
	if c.Input == "" {
		return c.Label()
	}
	return c.Label() + "/" + c.Input
}

// StandardConfigs are the eight Tt-Nn configurations of Section VII-A.
func StandardConfigs() []Config {
	return []Config{
		{Threads: 16, Nodes: 4},
		{Threads: 24, Nodes: 4},
		{Threads: 32, Nodes: 4},
		{Threads: 64, Nodes: 4},
		{Threads: 24, Nodes: 3},
		{Threads: 16, Nodes: 2},
		{Threads: 24, Nodes: 2},
		{Threads: 32, Nodes: 2},
	}
}

// Program is one materialized benchmark instance.
type Program struct {
	Name    string
	Cfg     Config
	Machine *topology.Machine
	Space   *memsim.AddressSpace
	Heap    *alloc.Heap
	Binding engine.Binding
	Phases  []trace.Phase
	// CacheConfig optionally overrides the hierarchy geometry (zero value =
	// machine defaults).
	CacheConfig cache.Config
}

// Builder constructs fresh instances of one benchmark.
type Builder struct {
	Name string
	// Inputs lists the input-size names this benchmark accepts, smallest
	// first (e.g. PARSEC's simSmall..native, NPB's A..C).
	Inputs []string
	// Build materializes the benchmark for one case.
	Build func(m *topology.Machine, cfg Config) (*Program, error)
}

// New materializes the builder, filling Config defaults (first input,
// T16-N2) when unset.
func (b Builder) New(m *topology.Machine, cfg Config) (*Program, error) {
	if cfg.Input == "" && len(b.Inputs) > 0 {
		cfg.Input = b.Inputs[0]
	}
	if cfg.Threads == 0 {
		cfg.Threads = 16
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	p, err := b.Build(m, cfg)
	if err != nil {
		return nil, fmt.Errorf("program %s %s: %w", b.Name, cfg, err)
	}
	if p.Name == "" {
		p.Name = b.Name
	}
	p.Cfg = cfg
	return p, nil
}

// Run executes the program with ecfg (Collector inside ecfg enables
// profiling). A fresh engine (fresh caches) is built per run.
func (p *Program) Run(ecfg engine.Config) (*engine.Result, error) {
	if ecfg.Seed == 0 {
		ecfg.Seed = p.Cfg.Seed + 1
	}
	e, err := engine.New(p.Machine, p.Space, p.CacheConfig, ecfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Run(p.Phases, p.Binding)
}

// NodesUsed returns the distinct NUMA nodes the binding covers, ascending.
func (p *Program) NodesUsed() []topology.NodeID {
	seen := map[topology.NodeID]bool{}
	var out []topology.NodeID
	for _, cpu := range p.Binding {
		n := p.Machine.NodeOfCPU(cpu)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Object finds a live heap object by name. It returns the first match; the
// workloads name their objects uniquely.
func (p *Program) Object(name string) (alloc.Object, bool) {
	for _, o := range p.Heap.Live() {
		if o.Name == name {
			return o, true
		}
	}
	return alloc.Object{}, false
}

// PartitionSeq carves [base, base+total) into per-thread contiguous slices
// and returns each thread's (offset, length), the layout of a blocked
// OpenMP parallel-for.
func PartitionSeq(total uint64, threads int) []struct{ Off, Len uint64 } {
	out := make([]struct{ Off, Len uint64 }, threads)
	per := total / uint64(threads)
	for i := range out {
		out[i].Off = uint64(i) * per
		out[i].Len = per
		if i == threads-1 {
			out[i].Len = total - out[i].Off
		}
	}
	return out
}
