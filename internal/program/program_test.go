package program

import (
	"fmt"
	"testing"
	"testing/quick"

	"drbw/internal/alloc"
	"drbw/internal/engine"
	"drbw/internal/memsim"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

func TestConfigLabels(t *testing.T) {
	c := Config{Threads: 16, Nodes: 4}
	if c.Label() != "T16-N4" {
		t.Errorf("label = %q", c.Label())
	}
	if c.String() != "T16-N4" {
		t.Errorf("string = %q", c.String())
	}
	c.Input = "native"
	if c.String() != "T16-N4/native" {
		t.Errorf("string with input = %q", c.String())
	}
}

func TestStandardConfigs(t *testing.T) {
	cfgs := StandardConfigs()
	if len(cfgs) != 8 {
		t.Fatalf("%d standard configs, want 8 (paper Section VII-A)", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.Threads%c.Nodes != 0 {
			t.Errorf("%s: threads not divisible by nodes", c.Label())
		}
		if seen[c.Label()] {
			t.Errorf("duplicate config %s", c.Label())
		}
		seen[c.Label()] = true
	}
	for _, want := range []string{"T16-N4", "T64-N4", "T24-N3", "T32-N2"} {
		if !seen[want] {
			t.Errorf("missing config %s", want)
		}
	}
}

func testBuilder() Builder {
	return Builder{
		Name:   "toy",
		Inputs: []string{"small", "large"},
		Build: func(m *topology.Machine, cfg Config) (*Program, error) {
			bind, err := engine.EvenBinding(m, cfg.Threads, cfg.Nodes)
			if err != nil {
				return nil, err
			}
			as := memsim.NewAddressSpace(m)
			heap := alloc.NewHeap(as, 0x10000000)
			obj, err := heap.Malloc("data", 1<<20, alloc.Site{Func: "main"}, memsim.BindTo(0))
			if err != nil {
				return nil, err
			}
			base := heap.Object(obj).Base
			ph := trace.Phase{Name: "work"}
			for i := 0; i < cfg.Threads; i++ {
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: &trace.Seq{Base: base, Len: 1 << 20, Elem: 8},
					Ops:    1e4, MLP: 4, WorkCycles: 1,
				})
			}
			return &Program{Machine: m, Space: as, Heap: heap, Binding: bind, Phases: []trace.Phase{ph}}, nil
		},
	}
}

func TestBuilderDefaults(t *testing.T) {
	m := topology.Uniform(4, 8) // default T16-N2 needs 8 cores per node
	p, err := testBuilder().New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cfg.Input != "small" {
		t.Errorf("default input = %q, want first listed", p.Cfg.Input)
	}
	if p.Cfg.Threads != 16 || p.Cfg.Nodes != 2 {
		t.Errorf("default config = %+v", p.Cfg)
	}
	if p.Name != "toy" {
		t.Errorf("name = %q", p.Name)
	}
}

func TestBuilderErrorWrapping(t *testing.T) {
	m := topology.Uniform(2, 2)
	// 16 threads on a 2x2 machine (4 CPUs) cannot bind.
	_, err := testBuilder().New(m, Config{Threads: 16, Nodes: 2})
	if err == nil {
		t.Fatal("impossible binding accepted")
	}
	if want := "program toy"; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Errorf("error not wrapped with program context: %v", err)
	}
}

func TestProgramRunAndNodesUsed(t *testing.T) {
	m := topology.Uniform(4, 4)
	p, err := testBuilder().New(m, Config{Threads: 8, Nodes: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nodes := p.NodesUsed()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Errorf("nodes used = %v", nodes)
	}
	res, err := p.Run(engine.Config{Window: 1024, Warmup: 256, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("run produced no cycles")
	}
	if _, ok := p.Object("data"); !ok {
		t.Error("object lookup by name failed")
	}
	if _, ok := p.Object("nope"); ok {
		t.Error("phantom object found")
	}
}

func TestPartitionSeq(t *testing.T) {
	parts := PartitionSeq(100, 3)
	if len(parts) != 3 {
		t.Fatalf("%d parts", len(parts))
	}
	var total uint64
	var prevEnd uint64
	for i, p := range parts {
		if p.Off != prevEnd {
			t.Errorf("part %d offset %d, want contiguous %d", i, p.Off, prevEnd)
		}
		prevEnd = p.Off + p.Len
		total += p.Len
	}
	if total != 100 {
		t.Errorf("parts cover %d bytes, want 100", total)
	}
	// Last part absorbs the remainder.
	if parts[2].Len != 34 {
		t.Errorf("last part = %d, want 34", parts[2].Len)
	}
}

// Property: PartitionSeq always covers [0,total) exactly, contiguously.
func TestPartitionSeqProperty(t *testing.T) {
	f := func(totalSel uint16, threadSel uint8) bool {
		total := uint64(totalSel) + 1
		threads := int(threadSel%32) + 1
		parts := PartitionSeq(total, threads)
		if len(parts) != threads {
			return false
		}
		var end uint64
		for _, p := range parts {
			if p.Off != end {
				return false
			}
			end = p.Off + p.Len
		}
		return end == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeedDefaulting(t *testing.T) {
	m := topology.Uniform(2, 2)
	p, err := testBuilder().New(m, Config{Threads: 4, Nodes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Zero-seed engine config inherits the program seed.
	res1, err := p.Run(engine.Config{Window: 512, Warmup: 128})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := testBuilder().New(m, Config{Threads: 4, Nodes: 2, Seed: 9})
	res2, err := p2.Run(engine.Config{Window: 512, Warmup: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles != res2.Cycles {
		t.Error("same program seed gave different results")
	}
}

func ExampleConfig_Label() {
	fmt.Println(Config{Threads: 64, Nodes: 4}.Label())
	// Output: T64-N4
}
