// Package micro implements the paper's training mini-programs (Section V-A):
//
//   - sumv / dotv / countv — OpenMP-style multithreaded vector operations,
//     each thread working on its own contiguous share of the vector(s). The
//     vector size and the placement of its pages tune each run into
//     "good" (bandwidth friendly) or "rmc" (remote memory bandwidth
//     contention) mode: small or co-located data stays friendly, large
//     vectors first-touched by the master thread concentrate every page on
//     one node and contend.
//
//   - bandit — a single-threaded stream of conflict misses built on huge
//     pages (following Eklov et al.'s Bandwidth Bandit): every access maps
//     to the same cache sets, so every access reaches DRAM. The chase is
//     dependent (low memory-level parallelism), so a bandit pushes latency,
//     not bandwidth — all 48 bandit runs are labeled "good" in Table II,
//     teaching the classifier that a high remote-access count alone is not
//     contention.
//
// TrainingSet reproduces Table II: 48 runs per mini-program, 192 total,
// 120 good / 72 rmc.
package micro

import (
	"fmt"

	"drbw/internal/alloc"
	"drbw/internal/engine"
	"drbw/internal/features"
	"drbw/internal/memsim"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Mode selects how a vector mini-program's data is sized and placed.
type Mode int

// Data modes of the vector mini-programs.
const (
	// SmallShared: a small vector (cache-scale) shared by all threads.
	SmallShared Mode = iota
	// BigColocated: a large vector first-touched in parallel, each thread's
	// share landing on its own node.
	BigColocated
	// BigCentralized: a large vector first-touched entirely by the master
	// thread on node 0 — the contention pathology.
	BigCentralized
)

// vectorKind distinguishes the three vector mini-programs.
type vectorKind int

const (
	kindSumv vectorKind = iota
	kindDotv
	kindCountv
)

func (k vectorKind) name() string {
	switch k {
	case kindSumv:
		return "sumv"
	case kindDotv:
		return "dotv"
	case kindCountv:
		return "countv"
	default:
		return fmt.Sprintf("vectorKind(%d)", int(k))
	}
}

// vectorParams per kind: dotv touches two vectors; countv updates a small
// cache-resident counter table between vector reads, so its cache-hit
// ratio is high even while its aggregate scan still saturates remote
// links — the low-miss-ratio face of contention (wavefront codes like NW
// look the same).
func (k vectorKind) params() (arrays int, mlp, work float64) {
	switch k {
	case kindDotv:
		return 2, 8, 1
	case kindCountv:
		return 1, 8, 0.5
	default:
		return 1, 8, 1
	}
}

// sliceBytes returns the per-thread share for a mode.
func sliceBytes(mode Mode, variant int) uint64 {
	switch mode {
	case SmallShared:
		// Total footprint ~1-2 MB regardless of thread count: after warmup
		// the working set lives in the caches.
		return 0 // handled by caller: fixed total
	case BigColocated, BigCentralized:
		return uint64(4+4*variant) * mb // 4 or 8 MB per thread
	}
	return 0
}

// Vector returns a builder for one of the vector mini-programs in the given
// mode. variant (0 or 1) selects the size point within the mode.
func Vector(kind vectorKind, mode Mode, variant int) program.Builder {
	name := fmt.Sprintf("%s-%s", kind.name(), modeName(mode))
	return program.Builder{
		Name:   name,
		Inputs: []string{"default"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			bind, err := engine.EvenBinding(m, cfg.Threads, cfg.Nodes)
			if err != nil {
				return nil, err
			}
			as := memsim.NewAddressSpace(m)
			heap := alloc.NewHeap(as, 0x10000000)
			arrays, mlp, work := kind.params()

			var slice uint64
			switch mode {
			case SmallShared:
				// A few KB per thread: after one pass the working set is
				// cache resident, the friendly end of the size sweep.
				slice = uint64(8+8*variant) * kb
			default:
				slice = sliceBytes(mode, variant)
			}
			total := slice * uint64(cfg.Threads)

			p := &program.Program{Machine: m, Space: as, Heap: heap, Binding: bind}
			var bases []uint64
			for a := 0; a < arrays; a++ {
				obj, err := heap.Malloc(
					fmt.Sprintf("vec_%c", 'a'+a), total,
					alloc.Site{Func: "main", File: kind.name() + ".c", Line: 10 + a},
					memsim.FirstTouchPolicy(),
				)
				if err != nil {
					return nil, err
				}
				switch mode {
				case BigCentralized:
					heap.TouchAll(obj, 0) // serial init by the master thread
				case BigColocated:
					// Parallel first touch, with a realistic imperfection:
					// a sprinkle of pages lands on the wrong node (helper
					// threads, demand-zero stragglers). Those pages produce
					// a few remote samples whose latency still reflects the
					// local controllers' queues, so the classifier cannot
					// call a run contended on remote latency alone — it
					// must also weigh the remote sample count, which is
					// exactly the paper's feature pair.
					nodes := make([]topology.NodeID, 0, cfg.Nodes)
					for n := 0; n < cfg.Nodes; n++ {
						nodes = append(nodes, topology.NodeID(n))
					}
					o := heap.Object(obj)
					psz := uint64(heap.Space().Machine().PageSize())
					pages := o.Size / psz
					for pg := uint64(0); pg < pages; pg += 48 {
						wrong := topology.NodeID((int(pg/48) + 1) % cfg.Nodes)
						heap.Space().Touch(o.Base+pg*psz, wrong)
					}
					heap.TouchPartitioned(obj, nodes)
				default:
					heap.TouchAll(obj, 0) // small: placement irrelevant
				}
				bases = append(bases, heap.Object(obj).Base)
			}

			// The size variant also selects the traversal: variant 0 sweeps
			// 8-byte doubles in order (1/8 of accesses start a new line,
			// and the stream prefetcher covers most of those), variant 1
			// visits the elements in random order (every access is a fresh
			// line and nothing is prefetched). The two variants keep the
			// same contention behaviour but produce very different cache-hit
			// ratios and LFB populations, so neither the latency-ratio
			// features nor the fill-buffer features can separate the classes
			// alone — the classifier is forced onto the remote-DRAM features
			// the paper's tree uses, which hold for both traversals.
			random := variant%2 == 1 && mode != SmallShared
			elem := uint64(8)
			elems := slice / elem
			passes := 3.0
			switch {
			case mode == SmallShared:
				passes = 40 // small data is re-scanned many times
			case random:
				// One pass: the random runs double as *short* contended
				// examples, teaching the classifier that a modest remote
				// sample count with inflated latency is still contention
				// (raw-count thresholds alone must not decide).
				passes = 1
			}
			// countv keeps a small per-thread counter table, hammered twice
			// per scanned element; the table is cache resident, so countv's
			// miss ratio is ~3x lower than sumv's at the same bandwidth
			// pressure.
			var countsBase uint64
			opsFactor := 1.0
			if kind == kindCountv {
				counters, err := heap.Malloc("counts", uint64(cfg.Threads)*4*kb,
					alloc.Site{Func: "main", File: "countv.c", Line: 22},
					memsim.FirstTouchPolicy())
				if err != nil {
					return nil, err
				}
				heap.TouchPartitioned(counters, nodesUpTo(cfg.Nodes))
				countsBase = heap.Object(counters).Base
				opsFactor = 3
			}

			// sweep yields the traversal stream for one vector share.
			sweep := func(base uint64) trace.Stream {
				if random {
					return &trace.Rand{Base: base, Len: slice, Elem: elem}
				}
				return &trace.Seq{Base: base, Len: slice, Elem: elem}
			}
			ph := trace.Phase{Name: "compute"}
			for t := 0; t < cfg.Threads; t++ {
				off := uint64(t) * slice
				var stream trace.Stream
				switch {
				case kind == kindCountv:
					stream = &trace.Mix{
						Streams: []trace.Stream{
							&trace.Seq{Base: countsBase + uint64(t)*4*kb, Len: 4 * kb, Elem: 8, WriteEvery: 2},
							sweep(bases[0] + off),
						},
						Weights: []int{2, 1},
					}
				case arrays == 1:
					stream = sweep(bases[0] + off)
				default:
					stream = &trace.Mix{
						Streams: []trace.Stream{
							sweep(bases[0] + off),
							sweep(bases[1] + off),
						},
						Weights: []int{1, 1},
					}
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream:     stream,
					Ops:        float64(elems) * float64(arrays) * passes * opsFactor,
					MLP:        mlp,
					WorkCycles: work,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// nodesUpTo lists nodes 0..n-1.
func nodesUpTo(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func modeName(m Mode) string {
	switch m {
	case SmallShared:
		return "small"
	case BigColocated:
		return "colocated"
	case BigCentralized:
		return "centralized"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Sumv builds the vector-summation mini-program.
func Sumv(mode Mode, variant int) program.Builder { return Vector(kindSumv, mode, variant) }

// Dotv builds the dot-product mini-program (two vectors).
func Dotv(mode Mode, variant int) program.Builder { return Vector(kindDotv, mode, variant) }

// Countv builds the count-occurrences mini-program.
func Countv(mode Mode, variant int) program.Builder { return Vector(kindCountv, mode, variant) }

// Bandit builds the bandit mini-program: `instances` single-threaded bandit
// processes, each chasing `streams` independent conflict-miss pointer chains
// through huge pages resident on node 0, running from the other nodes. The
// chase is dependent, so MLP equals the stream count — small — and the
// remote links never saturate.
func Bandit(streams, instances int) program.Builder {
	return program.Builder{
		Name:   "bandit",
		Inputs: []string{"default"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			if streams < 1 || instances < 1 {
				return nil, fmt.Errorf("bandit needs >=1 streams and instances, got %d/%d", streams, instances)
			}
			if m.Nodes() < 2 {
				return nil, fmt.Errorf("bandit needs a remote node")
			}
			as := memsim.NewAddressSpace(m)
			heap := alloc.NewHeap(as, 0x10000000)

			// Huge pages on node 0 give the deterministic page-offset →
			// cache-set mapping the conflict stream needs.
			obj, err := heap.MallocHuge("bandit_pages", 256*mb,
				alloc.Site{Func: "bandit_alloc", File: "bandit.c", Line: 77},
				memsim.BindTo(0))
			if err != nil {
				return nil, err
			}
			base := heap.Object(obj).Base

			// Conflict stride: one full pass of the L3 sets so consecutive
			// chain elements hit the same set. The hierarchy exposes its set
			// count; default E5 geometry gives a 1 MB stride.
			stride := uint64(16384 * m.LineSize())

			// Instances run on the non-home nodes, round-robin.
			var bind engine.Binding
			remoteNodes := m.Nodes() - 1
			perNode := map[topology.NodeID]int{}
			for i := 0; i < instances; i++ {
				node := topology.NodeID(1 + i%remoteNodes)
				cpus := m.CPUsOfNode(node)
				if perNode[node] >= len(cpus) {
					return nil, fmt.Errorf("too many bandit instances for node %d", node)
				}
				bind = append(bind, cpus[perNode[node]])
				perNode[node]++
			}

			ph := trace.Phase{Name: "chase"}
			for i := 0; i < instances; i++ {
				// Each instance's chains use distinct lines within the
				// shared sets: offset by instance and stream.
				addrs := make([]uint64, 0, 64*streams)
				for s := 0; s < streams; s++ {
					lane := uint64(i*streams+s) * 64
					for j := 0; j < 64; j++ {
						addrs = append(addrs, base+uint64(j)*stride+lane)
					}
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: &trace.Chase{Addrs: addrs},
					// Long runs: bandit's per-socket batches must carry
					// *more* remote samples than the weakest contended runs,
					// so a count threshold alone can never separate the
					// classes and the tree must also consult the latency.
					Ops: 2.5e6,
					MLP: float64(streams),
				})
			}
			return &program.Program{
				Machine: m, Space: as, Heap: heap,
				Binding: bind, Phases: []trace.Phase{ph},
			}, nil
		},
	}
}

// Instance is one labeled training run of Table II.
type Instance struct {
	Builder program.Builder
	Cfg     program.Config
	Mode    features.Label
}

// goodConfigs are the 12 Tt-Nn points used for friendly runs.
var goodConfigs = []program.Config{
	{Threads: 2, Nodes: 1}, {Threads: 4, Nodes: 1}, {Threads: 8, Nodes: 1}, {Threads: 16, Nodes: 1},
	{Threads: 8, Nodes: 2}, {Threads: 16, Nodes: 2}, {Threads: 32, Nodes: 2},
	{Threads: 24, Nodes: 3},
	{Threads: 16, Nodes: 4}, {Threads: 32, Nodes: 4}, {Threads: 64, Nodes: 4},
	{Threads: 48, Nodes: 3},
}

// rmcConfigs are the 12 Tt-Nn points used for contended runs (always more
// than one node; enough threads per node to saturate the links).
var rmcConfigs = []program.Config{
	{Threads: 8, Nodes: 2}, {Threads: 16, Nodes: 2}, {Threads: 24, Nodes: 2}, {Threads: 32, Nodes: 2},
	{Threads: 16, Nodes: 4}, {Threads: 24, Nodes: 4}, {Threads: 32, Nodes: 4}, {Threads: 64, Nodes: 4},
	{Threads: 24, Nodes: 3}, {Threads: 48, Nodes: 3},
	{Threads: 12, Nodes: 4}, {Threads: 40, Nodes: 4},
}

// TrainingSet reproduces Table II on machine m: for each vector
// mini-program, 24 good runs (12 small-shared + 12 big-colocated) and 24
// rmc runs (12 configs × 2 sizes, centralized); for bandit, 48 good runs.
// Seeds are deterministic.
func TrainingSet() []Instance {
	var out []Instance
	seed := uint64(1000)
	vecs := []struct {
		mk func(Mode, int) program.Builder
	}{{Sumv}, {Dotv}, {Countv}}
	for _, v := range vecs {
		for i, cfg := range goodConfigs {
			c := cfg
			c.Input = "default"
			c.Seed = seed
			seed++
			out = append(out, Instance{Builder: v.mk(SmallShared, i%2), Cfg: c, Mode: features.Good})
		}
		for i, cfg := range goodConfigs {
			c := cfg
			c.Input = "default"
			c.Seed = seed
			seed++
			// Variant cadence (i/4)%2 keeps both element-granularity
			// variants present even when callers subsample the set with a
			// stride of 4 (quick mode).
			out = append(out, Instance{Builder: v.mk(BigColocated, (i/4)%2), Cfg: c, Mode: features.Good})
		}
		for i, cfg := range rmcConfigs {
			c := cfg
			c.Input = "default"
			c.Seed = seed
			seed++
			out = append(out, Instance{Builder: v.mk(BigCentralized, (i/4)%2), Cfg: c, Mode: features.RMC})
		}
		for i, cfg := range rmcConfigs {
			c := cfg
			c.Input = "default"
			c.Seed = seed
			seed++
			out = append(out, Instance{Builder: v.mk(BigCentralized, 1-(i/4)%2), Cfg: c, Mode: features.RMC})
		}
	}
	// 48 bandit runs: streams × instances grid, 4 repetitions.
	for rep := 0; rep < 4; rep++ {
		for _, streams := range []int{1, 2, 4} {
			for _, instances := range []int{1, 2, 4, 8} {
				c := program.Config{
					Threads: instances, Nodes: 1, // informational; bandit binds itself
					Input: "default", Seed: seed,
				}
				seed++
				out = append(out, Instance{Builder: Bandit(streams, instances), Cfg: c, Mode: features.Good})
			}
		}
	}
	return out
}
