package micro

import (
	"testing"

	"drbw/internal/engine"
	"drbw/internal/features"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
)

func testEngineConfig(col *pebs.Collector) engine.Config {
	return engine.Config{Window: 2048, Warmup: 512, ReservoirSize: 256, Seed: 7, Collector: col}
}

func TestTrainingSetMatchesTableII(t *testing.T) {
	set := TrainingSet()
	if len(set) != 192 {
		t.Fatalf("training set has %d instances, want 192", len(set))
	}
	counts := map[string]map[features.Label]int{}
	for _, inst := range set {
		prog := inst.Builder.Name
		// Collapse the mode suffix: sumv-small -> sumv.
		for _, base := range []string{"sumv", "dotv", "countv", "bandit"} {
			if len(prog) >= len(base) && prog[:len(base)] == base {
				prog = base
			}
		}
		if counts[prog] == nil {
			counts[prog] = map[features.Label]int{}
		}
		counts[prog][inst.Mode]++
	}
	for _, prog := range []string{"sumv", "dotv", "countv"} {
		if counts[prog][features.Good] != 24 || counts[prog][features.RMC] != 24 {
			t.Errorf("%s: %d good / %d rmc, want 24/24", prog, counts[prog][features.Good], counts[prog][features.RMC])
		}
	}
	if counts["bandit"][features.Good] != 48 || counts["bandit"][features.RMC] != 0 {
		t.Errorf("bandit: %d good / %d rmc, want 48/0", counts["bandit"][features.Good], counts["bandit"][features.RMC])
	}
	// Seeds must be distinct so runs are independent.
	seeds := map[uint64]bool{}
	for _, inst := range set {
		if seeds[inst.Cfg.Seed] {
			t.Fatalf("duplicate seed %d", inst.Cfg.Seed)
		}
		seeds[inst.Cfg.Seed] = true
	}
}

func TestCentralizedVectorContends(t *testing.T) {
	m := topology.XeonE5_4650()
	b := Sumv(BigCentralized, 0)
	p, err := b.New(m, program.Config{Threads: 32, Nodes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(testEngineConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctrl0 := topology.Channel{Src: 0, Dst: 0}
	if u := res.Phases[0].Channels[ctrl0].PeakUtil; u < 1 {
		t.Errorf("centralized sumv node-0 util %.2f, want saturated", u)
	}
	if res.RemoteDRAMAccesses() < res.LocalDRAMAccesses() {
		t.Error("centralized run should be remote-dominated")
	}
	if res.AvgDRAMLatency() < 1.4*m.Latencies().RemoteDRAM {
		t.Errorf("centralized latency %.0f not inflated", res.AvgDRAMLatency())
	}
}

func TestColocatedVectorDoesNotContendRemotely(t *testing.T) {
	m := topology.XeonE5_4650()
	b := Dotv(BigColocated, 0)
	p, err := b.New(m, program.Config{Threads: 32, Nodes: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(testEngineConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	total := res.RemoteDRAMAccesses() + res.LocalDRAMAccesses()
	if total == 0 {
		t.Fatal("big colocated run should reach DRAM")
	}
	if res.RemoteDRAMAccesses() > 0.1*total {
		t.Errorf("colocated run %.0f%% remote", 100*res.RemoteDRAMAccesses()/total)
	}
	for _, ch := range m.RemoteChannels() {
		if u := res.Channel(ch).PeakUtil; u > 0.5 {
			t.Errorf("remote channel %v util %.2f on colocated run", ch, u)
		}
	}
}

func TestSmallSharedStaysInCache(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := Countv(SmallShared, 0).New(m, program.Config{Threads: 16, Nodes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// countv's Mix gives the scan a third of the window; cover a full pass.
	cfg := engine.Config{Window: 8192, Warmup: 4096, ReservoirSize: 256, Seed: 7}
	res, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dram := res.RemoteDRAMAccesses() + res.LocalDRAMAccesses()
	var ops float64
	for _, th := range p.Phases[0].Threads {
		ops += th.Ops
	}
	if dram > 0.05*ops {
		t.Errorf("small shared run sent %.2f%% of accesses to DRAM", 100*dram/ops)
	}
}

func TestBanditHighRemoteLowContention(t *testing.T) {
	m := topology.XeonE5_4650()
	col := pebs.NewCollector(pebs.Config{Period: 500}, 11)
	p, err := Bandit(4, 8).New(m, program.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(testEngineConfig(col))
	if err != nil {
		t.Fatal(err)
	}
	total := res.RemoteDRAMAccesses() + res.LocalDRAMAccesses()
	if total == 0 || res.RemoteDRAMAccesses() < 0.8*total {
		t.Fatalf("bandit should be almost all remote: %.0f/%.0f", res.RemoteDRAMAccesses(), total)
	}
	// The defining property: high remote traffic count, no saturation, base
	// latency.
	for _, ch := range m.Channels() {
		if u := res.Channel(ch).PeakUtil; u > 0.8 {
			t.Errorf("bandit saturated channel %v (%.2f)", ch, u)
		}
	}
	if res.AvgDRAMLatency() > 1.25*m.Latencies().RemoteDRAM {
		t.Errorf("bandit latency %.0f should stay near base", res.AvgDRAMLatency())
	}
	// And the samples reflect it: plenty of remote-DRAM samples.
	remote := 0
	for _, s := range col.Samples() {
		if s.RemoteDRAM() {
			remote++
		}
	}
	if remote < 50 {
		t.Errorf("bandit produced only %d remote samples", remote)
	}
}

func TestBanditValidation(t *testing.T) {
	m := topology.XeonE5_4650()
	if _, err := Bandit(0, 1).New(m, program.Config{}); err == nil {
		t.Error("zero streams accepted")
	}
	if _, err := Bandit(1, 0).New(m, program.Config{}); err == nil {
		t.Error("zero instances accepted")
	}
	if _, err := Bandit(1, 999).New(m, program.Config{}); err == nil {
		t.Error("absurd instance count accepted")
	}
}

func TestVectorBuilderRespectsConfig(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := Sumv(BigCentralized, 1).New(m, program.Config{Threads: 24, Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Binding) != 24 || len(p.Phases[0].Threads) != 24 {
		t.Fatalf("binding/threads = %d/%d, want 24", len(p.Binding), len(p.Phases[0].Threads))
	}
	nodes := p.NodesUsed()
	if len(nodes) != 3 {
		t.Fatalf("nodes used = %v, want 3 nodes", nodes)
	}
	if _, ok := p.Object("vec_a"); !ok {
		t.Error("vec_a object missing")
	}
	// dotv has two vectors.
	p2, err := Dotv(SmallShared, 0).New(m, program.Config{Threads: 8, Nodes: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.Object("vec_b"); !ok {
		t.Error("dotv second vector missing")
	}
}
