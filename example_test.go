package drbw_test

import (
	"fmt"
	"log"

	"drbw"
)

// Train a classifier and analyze the paper's flagship contended benchmark.
func Example() {
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := tool.Analyze("Streamcluster", drbw.Case{
		Input: "native", Threads: 32, Nodes: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Contended() {
		fmt.Println("contended channels:", rep.Channels)
		fmt.Println("blame:", rep.TopObjects(2))
	}
}

// Describe a custom program and let DR-BW find its contended array.
func ExampleTool_AnalyzeWorkload() {
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	w := drbw.WorkloadSpec{
		Name: "lookup-service",
		Arrays: []drbw.ArraySpec{
			{Name: "table", MB: 128, Placement: drbw.Master, Pattern: drbw.SharedRandom},
			{Name: "output", MB: 32, Placement: drbw.Parallel, Pattern: drbw.Scan},
		},
		MLP: 6, WorkCycles: 2,
	}
	rep, err := tool.AnalyzeWorkload(w, drbw.Case{Threads: 32, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.TopObjects(1)) // the master-placed table
}

// Measure the paper's replication fix on the object the diagnoser blames.
func ExampleTool_Optimize() {
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	c := drbw.Case{Input: "native", Threads: 32, Nodes: 4}
	rep, _ := tool.Analyze("Streamcluster", c)
	cmp, err := tool.Optimize("Streamcluster", c, drbw.Replicate, rep.TopObjects(1)...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1fx speedup, remote accesses -%0.f%%\n",
		cmp.Speedup(), 100*cmp.RemoteReduction)
}

// Persist a trained classifier and reuse it without retraining.
func ExampleLoad() {
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := tool.Save("/tmp/drbw-model.json"); err != nil {
		log.Fatal(err)
	}
	loaded, err := drbw.Load("/tmp/drbw-model.json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(loaded.TreeFeatures()) // same tree, no retraining
}

// Record a profile once, analyze it offline any number of times.
func ExampleTool_Record() {
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	td, err := tool.Record("Streamcluster", drbw.Case{Input: "native", Threads: 32, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := td.Save("/tmp/run.samples.csv", "/tmp/run.objects.csv"); err != nil {
		log.Fatal(err)
	}
	reloaded, _ := drbw.LoadTrace("/tmp/run.samples.csv", "/tmp/run.objects.csv")
	rep, _ := tool.AnalyzeTrace(reloaded)
	fmt.Println(rep.Contended())
}
