package drbw_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drbw"
	"drbw/internal/core"
	"drbw/internal/obs"
)

// TestChromeTraceCoversBlockRanges runs a traced analysis over both the
// indexed block-range path and the shard fan-out, then checks the Chrome
// export end to end: the JSON loads as trace-event format, every per-job
// "case" span carries its portion identity ([from, to) plus worker id),
// and together the pass-1 block-range spans tile the whole recording.
func TestChromeTraceCoversBlockRanges(t *testing.T) {
	tl := sharedTool(t)
	td, sPath, oPath := recordTo(t, tl, 91, drbw.FormatBinary)
	shards, shardObjs := splitTrace(t, td, 3)

	// The test exercises the block fan-out, which a one-worker pool skips
	// in favor of the serial path; pin two workers so the fan-out runs
	// even on single-CPU hosts.
	core.SetPoolWorkers(2)
	t.Cleanup(func() { core.SetPoolWorkers(0) })

	obs.StartTracing()
	t.Cleanup(func() { obs.StopTracing() })
	if _, err := tl.AnalyzeTraceFile(sPath, oPath); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.AnalyzeTraceShards(shards, shardObjs); err != nil {
		t.Fatal(err)
	}
	tr := obs.StopTracing()
	if tr == nil {
		t.Fatal("tracer vanished mid-test")
	}

	var buf bytes.Buffer
	if err := tr.Export(&buf, obs.TraceChrome); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int64          `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	roots := map[string]bool{}
	// covered[from] = to for pass-1 block-range spans of the indexed path.
	covered := map[int]int{}
	shardPortions := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected phase %q in event %+v", ev.Ph, ev)
		}
		roots[ev.Name] = true
		if ev.Name != "case" {
			continue
		}
		portion, ok := ev.Args["portion"].(string)
		if !ok {
			continue // pool cases from other instrumented call sites
		}
		w, ok := ev.Args["worker"].(float64)
		if !ok {
			t.Fatalf("case span missing worker attr: %+v", ev.Args)
		}
		if ev.Tid != int64(w)+1 {
			t.Fatalf("tid %d does not encode worker %v", ev.Tid, w)
		}
		from, okF := ev.Args["from"].(float64)
		to, okT := ev.Args["to"].(float64)
		pass, okP := ev.Args["pass"].(float64)
		if !okF || !okT || !okP {
			t.Fatalf("case span missing from/to/pass attrs: %+v", ev.Args)
		}
		if portion == "blocks" && pass == 1 {
			covered[int(from)] = int(to)
		}
		if strings.HasSuffix(portion, ".bin") {
			shardPortions[portion] = true
		}
	}
	for _, name := range []string{"analyze.trace_file", "analyze.shards", "case"} {
		if !roots[name] {
			t.Fatalf("trace has no %q span; got %v", name, roots)
		}
	}
	if len(covered) == 0 {
		t.Fatal("no pass-1 block-range spans recorded for the indexed path")
	}
	// The block ranges must tile [0, N) with no gaps.
	next, max := 0, 0
	for _, to := range covered {
		if to > max {
			max = to
		}
	}
	for next < max {
		to, ok := covered[next]
		if !ok || to <= next {
			t.Fatalf("block coverage gap at %d (ranges %v)", next, covered)
		}
		next = to
	}
	if len(shardPortions) != len(shards) {
		t.Fatalf("shard spans name %d distinct files, want %d: %v",
			len(shardPortions), len(shards), shardPortions)
	}
}

// TestFlightDumpOnAnalysisError corrupts a recording and checks that the
// failing analysis dumps the flight recorder to the configured sink with
// the failing operation named.
func TestFlightDumpOnAnalysisError(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, oPath := recordTo(t, tl, 92, drbw.FormatBinary)

	// Truncate the samples file mid-stream so decoding fails.
	b, err := os.ReadFile(sPath)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "truncated.bin")
	if err := os.WriteFile(bad, b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	obs.SetFlightSink(&buf)
	t.Cleanup(func() { obs.SetFlightSink(nil) })

	if _, err := tl.AnalyzeTraceFile(bad, oPath); err == nil {
		t.Fatal("truncated recording analyzed without error")
	}
	out := buf.String()
	if !strings.Contains(out, "analyze.trace_file failed:") {
		t.Fatalf("flight dump missing failure line:\n%s", out)
	}
	if !strings.Contains(out, "flight recorder:") {
		t.Fatalf("flight dump missing recorder header:\n%s", out)
	}
}

// TestLedgerDeterministicAcrossRuns analyzes the same recording twice and
// requires byte-identical deterministic ledger sections — the audit
// guarantee that a rerun with the same trace and config is provably the
// same computation. It also pins the sample-count audit link between the
// recording and its report.
func TestLedgerDeterministicAcrossRuns(t *testing.T) {
	tl := sharedTool(t)
	td, sPath, oPath := recordTo(t, tl, 93, drbw.FormatBinary)

	build := func() []byte {
		rep, err := tl.AnalyzeTraceFile(sPath, oPath)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Samples != int64(len(td.Samples)) {
			t.Fatalf("report samples %d != recorded %d", rep.Samples, len(td.Samples))
		}
		led := obs.NewLedger("drbw-analyze", map[string]string{
			"samples": sPath,
			"objects": oPath,
		})
		led.AddResult(drbw.ReportLedgerResult(sPath, rep, nil))
		led.AttachMetrics() // volatile; must not leak into the bytes
		det, err := led.DeterministicBytes()
		if err != nil {
			t.Fatal(err)
		}
		return det
	}

	one, two := build(), build()
	if !bytes.Equal(one, two) {
		t.Fatalf("ledger deterministic sections differ across reruns:\n%s\n%s", one, two)
	}

	// The full marshal round-trips and its fingerprint matches the
	// deterministic section (schema contract shared with the CI smoke job).
	led := obs.NewLedger("drbw-analyze", map[string]string{"samples": sPath})
	rep, err := tl.AnalyzeTraceFile(sPath, oPath)
	if err != nil {
		t.Fatal(err)
	}
	led.AddResult(drbw.ReportLedgerResult(sPath, rep, nil))
	raw, err := led.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Ledger
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("ledger does not parse: %v", err)
	}
	if back.Schema != obs.LedgerSchema || len(back.Results) != 1 {
		t.Fatalf("ledger round-trip lost fields: %+v", back)
	}
	if back.Results[0].Samples != rep.Samples {
		t.Fatalf("ledger samples %d != report %d", back.Results[0].Samples, rep.Samples)
	}
}
