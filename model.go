package drbw

import (
	"encoding/json"
	"fmt"
	"os"

	"drbw/internal/core"
	"drbw/internal/dtree"
)

// modelVersion guards the on-disk format.
const modelVersion = 1

// savedModel is the JSON layout of a persisted classifier.
type savedModel struct {
	Version int                       `json:"version"`
	Machine Machine                   `json:"machine"`
	Config  Config                    `json:"config"`
	Summary map[string]map[string]int `json:"training_summary,omitempty"`
	Tree    json.RawMessage           `json:"tree"`
}

// Save persists the trained classifier to path as JSON. The file carries
// the decision tree, the machine it was trained for, and the training
// summary; it does not carry the raw training runs, so a loaded tool can
// Analyze/Evaluate/Optimize but not CrossValidate.
func (t *Tool) Save(path string) error {
	treeJSON, err := json.Marshal(t.tree)
	if err != nil {
		return fmt.Errorf("drbw: serializing tree: %w", err)
	}
	m := savedModel{
		Version: modelVersion,
		Machine: t.cfg.Machine,
		Config:  t.cfg,
		Summary: t.TrainingSummary(),
		Tree:    treeJSON,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("drbw: serializing model: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load restores a classifier saved with Save. The returned tool analyzes
// and optimizes like a freshly trained one; methods that need the raw
// training runs (CrossValidate, SelectedCandidates) report an error or
// empty results.
func Load(path string) (*Tool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("drbw: %w", err)
	}
	var m savedModel
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("drbw: parsing model %s: %w", path, err)
	}
	if m.Version != modelVersion {
		return nil, fmt.Errorf("drbw: model %s has version %d, this build reads %d", path, m.Version, modelVersion)
	}
	machine, err := m.Machine.build()
	if err != nil {
		return nil, fmt.Errorf("drbw: model %s: %w", path, err)
	}
	var tree dtree.Tree
	if err := json.Unmarshal(m.Tree, &tree); err != nil {
		return nil, fmt.Errorf("drbw: model %s: %w", path, err)
	}
	cfg := m.Config
	cfg.Machine = m.Machine
	tool := &Tool{
		cfg:      cfg,
		machine:  machine,
		tree:     &tree,
		detector: core.NewDetector(&tree, cfg.engineConfig()),
		summary:  m.Summary,
	}
	return tool, nil
}

// errNoTrainingData reports operations that need the raw training runs.
var errNoTrainingData = fmt.Errorf("drbw: this tool was loaded from a saved model and carries no training runs; retrain with drbw.Train to cross-validate")
