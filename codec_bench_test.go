package drbw_test

// Codec and streaming-analysis benchmarks on a ~1M-sample synthetic trace.
// scripts/bench.sh snapshots these into BENCH_engine.json and derives the
// decode-speedup gate (binary must decode several times faster than CSV)
// from the TraceDecode pair.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"drbw"
	"drbw/internal/core"
	"drbw/internal/profiledata"
)

// benchTraceSamples is ~1M: large enough that decode and analysis dominate
// setup, small enough that a CSV copy of the trace fits comfortably in RAM.
const benchTraceSamples = 1 << 20

// codecTrace builds an n-sample recording on the CSV grid (integral times,
// whole-cycle latencies) so both formats carry identical data and the
// decode comparison is apples to apples. The mix skews toward remote MEM
// traffic onto node 0 so the analysis benchmarks exercise the full
// detect + attribute + timeline pipeline.
func codecTrace(n int) *drbw.TraceData {
	rng := rand.New(rand.NewSource(42))
	levels := []string{"L1", "L2", "L3", "LFB", "MEM"}
	const objSize = 1 << 24
	td := &drbw.TraceData{Bench: "synthetic", Config: "bench", Weight: 3}
	for i := 0; i < 8; i++ {
		td.Objects = append(td.Objects, drbw.ObjectRecord{
			ID: i, Name: fmt.Sprintf("obj%d", i), Func: "bench", File: "bench.go", Line: 10 + i,
			Base: 0x10000000 + uint64(i)*objSize, Size: objSize,
		})
	}
	td.Samples = make([]drbw.SampleRecord, n)
	for i := range td.Samples {
		level := levels[rng.Intn(len(levels))]
		src := rng.Intn(4)
		home := src
		lat := float64(40 + rng.Intn(200))
		if level == "MEM" {
			home = rng.Intn(4) & 1 // remote traffic piles onto nodes 0 and 1
			lat = float64(300 + rng.Intn(900))
		}
		td.Samples[i] = drbw.SampleRecord{
			Time:     float64(i * 20),
			CPU:      rng.Intn(32),
			Thread:   rng.Intn(32),
			Addr:     0x10000000 + uint64(rng.Int63n(8*objSize)),
			Level:    level,
			Latency:  lat,
			Write:    rng.Intn(5) == 0,
			SrcNode:  src,
			HomeNode: home,
		}
	}
	return td
}

// BenchmarkTraceDecode decodes the same 1M-sample trace from both on-disk
// formats through the autodetecting reader. ns/op is the full-trace decode
// time, so csv_ns / binary_ns is the decode speedup scripts/bench.sh gates
// on; the binary variant also reports the file-size ratio as csv-size-x.
func BenchmarkTraceDecode(b *testing.B) {
	td := codecTrace(benchTraceSamples)
	dir := b.TempDir()
	encoded := map[string][]byte{}
	for name, format := range map[string]drbw.TraceFormat{
		"csv": drbw.FormatCSV, "binary": drbw.FormatBinary,
	} {
		sPath := filepath.Join(dir, "samples-"+name)
		if err := td.SaveAs(sPath, filepath.Join(dir, "objects-"+name), format); err != nil {
			b.Fatal(err)
		}
		raw, err := os.ReadFile(sPath)
		if err != nil {
			b.Fatal(err)
		}
		encoded[name] = raw
	}
	for _, name := range []string{"csv", "binary"} {
		b.Run(name, func(b *testing.B) {
			raw := encoded[name]
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				samples, _, err := profiledata.ReadSamples(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				if len(samples) != len(td.Samples) {
					b.Fatalf("decoded %d samples, want %d", len(samples), len(td.Samples))
				}
			}
			b.ReportMetric(float64(len(td.Samples)), "samples/op")
			if name == "binary" {
				b.ReportMetric(float64(len(encoded["csv"]))/float64(len(raw)), "csv-size-x")
			}
		})
	}
}

// BenchmarkAnalyzeTrace runs the full offline analysis of the 1M-sample
// recording: slice is LoadTrace + AnalyzeTrace (materializes the trace),
// stream is AnalyzeTraceFile (block-at-a-time, memory bounded by the decode
// block size — visible in B/op).
func BenchmarkAnalyzeTrace(b *testing.B) {
	tool := sharedTool(b)
	td := codecTrace(benchTraceSamples)
	dir := b.TempDir()
	sPath := filepath.Join(dir, "samples.bin")
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.SaveAs(sPath, oPath, drbw.FormatBinary); err != nil {
		b.Fatal(err)
	}
	b.Run("slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loaded, err := drbw.LoadTrace(sPath, oPath)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tool.AnalyzeTrace(loaded); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tool.AnalyzeTraceFile(sPath, oPath); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAnalyzeSinglePass pins the fused single-pass analysis against
// the retained two-pass path on the same checksummed indexed recording.
// Both variants run in one process, so their ratio holds up on noisy
// shared hosts where absolute ns/op does not; scripts/bench.sh derives the
// singlepass-speedup gate from the pair. The reports are bit-identical
// (TestSinglePassMatchesTwoPassMatrix), so the ratio is pure decode and
// accumulation work.
func BenchmarkAnalyzeSinglePass(b *testing.B) {
	tool := sharedTool(b)
	td := codecTrace(benchTraceSamples)
	dir := b.TempDir()
	sPath := filepath.Join(dir, "samples.bin")
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.SaveAs(sPath, oPath, drbw.FormatBinary); err != nil {
		b.Fatal(err)
	}
	b.Run("singlepass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tool.AnalyzeTraceFile(sPath, oPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("twopass", func(b *testing.B) {
		restore := drbw.SetForceTwoPass(true)
		defer restore()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tool.AnalyzeTraceFile(sPath, oPath); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAnalyzeCached pins the result cache's payoff on the 1M-sample
// recording: cold clears the cache every iteration (fingerprint + full
// analysis + store), warm primes once and then every iteration is a
// fingerprint + memory-tier hit. scripts/bench.sh derives the cache-speedup
// gate (warm must be >= MIN_CACHE_SPEEDUP times faster than cold) from the
// pair; the reports are bit-identical either way.
func BenchmarkAnalyzeCached(b *testing.B) {
	tool := sharedTool(b)
	td := codecTrace(benchTraceSamples)
	dir := b.TempDir()
	sPath := filepath.Join(dir, "samples.bin")
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.SaveAs(sPath, oPath, drbw.FormatBinary); err != nil {
		b.Fatal(err)
	}
	cache, err := drbw.OpenCache(filepath.Join(dir, "cache"), drbw.CacheOptions{})
	if err != nil {
		b.Fatal(err)
	}
	tool.SetCache(cache)
	defer tool.SetCache(nil)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := cache.Clear(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := tool.AnalyzeTraceFile(sPath, oPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := tool.AnalyzeTraceFile(sPath, oPath); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tool.AnalyzeTraceFile(sPath, oPath); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardAnalyze pins the block-parallel analysis of one indexed
// recording: serial is the same fan-out capped at one worker, parallel uses
// the full pool. scripts/bench.sh derives the shard-speedup gate from the
// pair; the merge is exact, so both variants produce bit-identical reports.
func BenchmarkShardAnalyze(b *testing.B) {
	tool := sharedTool(b)
	td := codecTrace(benchTraceSamples)
	dir := b.TempDir()
	sPath := filepath.Join(dir, "samples.bin")
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.SaveAs(sPath, oPath, drbw.FormatBinary); err != nil {
		b.Fatal(err)
	}
	defer core.SetPoolWorkers(0)
	for _, v := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(v.name, func(b *testing.B) {
			core.SetPoolWorkers(v.workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tool.AnalyzeTraceFile(sPath, oPath); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
