package drbw_test

import (
	"strings"
	"sync"
	"testing"

	"drbw"
)

var (
	toolOnce sync.Once
	tool     *drbw.Tool
	toolErr  error
)

// sharedTool trains once (quick mode, reduced window) for every public-API
// test and benchmark.
func sharedTool(t testing.TB) *drbw.Tool {
	t.Helper()
	toolOnce.Do(func() {
		tool, toolErr = drbw.Train(drbw.Config{
			Quick:  true,
			Window: 4096, Warmup: 2048,
			Seed: 5,
		})
	})
	if toolErr != nil {
		t.Fatal(toolErr)
	}
	return tool
}

func TestTrainRejectsUnknownMachine(t *testing.T) {
	if _, err := drbw.Train(drbw.Config{Machine: "pdp-11"}); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestMachinesListed(t *testing.T) {
	ms := drbw.Machines()
	if len(ms) < 2 {
		t.Fatalf("machines: %v", ms)
	}
}

func TestTrainingSummaryAndTree(t *testing.T) {
	tl := sharedTool(t)
	if tl.TrainingRuns() != 48 {
		t.Errorf("quick training runs = %d, want 48", tl.TrainingRuns())
	}
	sum := tl.TrainingSummary()
	if sum["bandit"]["good"] == 0 {
		t.Error("no bandit good runs in summary")
	}
	tree := tl.Tree()
	if !strings.Contains(tree, "<=") {
		t.Errorf("tree rendering missing splits:\n%s", tree)
	}
	feats := tl.TreeFeatures()
	if len(feats) == 0 {
		t.Fatal("tree uses no features")
	}
	for _, f := range feats {
		if f < 1 || f > 13 {
			t.Errorf("feature index %d out of Table I range", f)
		}
		if drbw.FeatureName(f) == "" {
			t.Errorf("feature %d unnamed", f)
		}
	}
}

func TestCrossValidatePublic(t *testing.T) {
	tl := sharedTool(t)
	cm, err := tl.CrossValidate()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 48 {
		t.Errorf("CV total %d", cm.Total())
	}
	if cm.Accuracy() < 0.85 {
		t.Errorf("CV accuracy %.2f", cm.Accuracy())
	}
	if !strings.Contains(cm.String(), "accuracy") {
		t.Error("confusion rendering incomplete")
	}
}

func TestBenchmarksRegistry(t *testing.T) {
	names := drbw.Benchmarks()
	if len(names) != 23 {
		t.Fatalf("%d benchmarks", len(names))
	}
	inputs, err := drbw.BenchmarkInputs("Streamcluster")
	if err != nil || len(inputs) != 2 {
		t.Fatalf("streamcluster inputs %v err %v", inputs, err)
	}
	if _, err := drbw.BenchmarkInputs("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAnalyzeContendedCase(t *testing.T) {
	tl := sharedTool(t)
	rep, err := tl.Analyze("Streamcluster", drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contended() {
		t.Fatal("streamcluster not detected")
	}
	if len(rep.Channels) == 0 {
		t.Error("no channels in report")
	}
	top := rep.TopObjects(1)
	if len(top) != 1 || top[0] != "block" {
		t.Errorf("top objects %v, want [block]", top)
	}
	s := rep.String()
	if !strings.Contains(s, "CONTENTION") || !strings.Contains(s, "block") {
		t.Errorf("report rendering:\n%s", s)
	}
	// The timeline shows sustained remote pressure for this steady workload.
	if len(rep.Timeline) == 0 {
		t.Fatal("timeline missing")
	}
	spark := rep.TimelineSparkline()
	if strings.TrimSpace(spark) == "" {
		t.Errorf("sparkline empty for a contended run: %q", spark)
	}
	if !strings.Contains(s, "remote latency over time") {
		t.Errorf("rendering missing timeline:\n%s", s)
	}
}

func TestAnalyzeFriendlyCase(t *testing.T) {
	tl := sharedTool(t)
	rep, err := tl.Analyze("Swaptions", drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Contended() {
		t.Errorf("swaptions flagged: %s", rep)
	}
	if !strings.Contains(rep.String(), "no remote memory bandwidth contention") {
		t.Errorf("friendly rendering:\n%s", rep)
	}
}

func TestAnalyzeUnknownBenchmark(t *testing.T) {
	tl := sharedTool(t)
	if _, err := tl.Analyze("nope", drbw.Case{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestEvaluateIncludesGroundTruth(t *testing.T) {
	tl := sharedTool(t)
	rep, err := tl.Evaluate("Streamcluster", drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Evaluated {
		t.Fatal("ground truth missing")
	}
	if !rep.Actual || rep.InterleaveSpeedup < 1.1 {
		t.Errorf("actual=%v speedup=%.2f", rep.Actual, rep.InterleaveSpeedup)
	}
}

func TestOptimizeReplicationFixesStreamcluster(t *testing.T) {
	tl := sharedTool(t)
	c := drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: 7}
	cmp, err := tl.Optimize("Streamcluster", c, drbw.Replicate, "block")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() < 1.2 {
		t.Errorf("replicate speedup %.2f", cmp.Speedup())
	}
	if cmp.RemoteReduction <= 0 {
		t.Errorf("remote reduction %.2f", cmp.RemoteReduction)
	}
}

func TestOptimizeUnknownObject(t *testing.T) {
	tl := sharedTool(t)
	c := drbw.Case{Input: "native", Threads: 16, Nodes: 2, Seed: 8}
	if _, err := tl.Optimize("Streamcluster", c, drbw.Colocate, "not_an_array"); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	if drbw.Interleave.String() != "interleave" || drbw.Colocate.String() != "co-locate" ||
		drbw.Replicate.String() != "replicate" {
		t.Error("strategy names wrong")
	}
	if !strings.Contains(drbw.Strategy(9).String(), "9") {
		t.Error("unknown strategy rendering")
	}
}

func TestStandardCases(t *testing.T) {
	cs := drbw.StandardCases("native")
	if len(cs) != 8 {
		t.Fatalf("%d standard cases", len(cs))
	}
	for _, c := range cs {
		if c.Input != "native" || c.Threads%c.Nodes != 0 {
			t.Errorf("bad case %+v", c)
		}
	}
}

func TestCustomWorkloadPipeline(t *testing.T) {
	tl := sharedTool(t)
	w := drbw.WorkloadSpec{
		Name: "hotarray",
		Arrays: []drbw.ArraySpec{
			{Name: "hot", MB: 96, Placement: drbw.Master, Pattern: drbw.Scan, Weight: 3},
			{Name: "cold", MB: 16, Placement: drbw.Parallel, Pattern: drbw.Scan},
		},
		MLP: 8, WorkCycles: 1,
	}
	c := drbw.Case{Threads: 32, Nodes: 4, Seed: 9}
	rep, err := tl.AnalyzeWorkload(w, c)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contended() {
		t.Fatal("master-placed hot array not detected")
	}
	if top := rep.TopObjects(1); len(top) == 0 || top[0] != "hot" {
		t.Errorf("top objects %v, want hot first", top)
	}
	cmp, err := tl.OptimizeWorkload(w, c, drbw.Colocate, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() < 1.3 {
		t.Errorf("co-locating the hot array gained only %.2fx", cmp.Speedup())
	}
}

func TestCustomWorkloadValidation(t *testing.T) {
	tl := sharedTool(t)
	if _, err := tl.AnalyzeWorkload(drbw.WorkloadSpec{Name: "empty"}, drbw.Case{Threads: 8, Nodes: 2}); err == nil {
		t.Error("empty workload accepted")
	}
	bad := drbw.WorkloadSpec{Arrays: []drbw.ArraySpec{{Name: "a", MB: 0}}}
	if _, err := tl.AnalyzeWorkload(bad, drbw.Case{Threads: 8, Nodes: 2}); err == nil {
		t.Error("zero-size array accepted")
	}
	unnamed := drbw.WorkloadSpec{Arrays: []drbw.ArraySpec{{MB: 4}}}
	if _, err := tl.AnalyzeWorkload(unnamed, drbw.Case{Threads: 8, Nodes: 2}); err == nil {
		t.Error("unnamed array accepted")
	}
	badPlace := drbw.WorkloadSpec{Arrays: []drbw.ArraySpec{{Name: "a", MB: 4, Placement: "moon"}}}
	if _, err := tl.AnalyzeWorkload(badPlace, drbw.Case{Threads: 8, Nodes: 2}); err == nil {
		t.Error("unknown placement accepted")
	}
	badPat := drbw.WorkloadSpec{Arrays: []drbw.ArraySpec{{Name: "a", MB: 4, Pattern: "zigzag"}}}
	if _, err := tl.AnalyzeWorkload(badPat, drbw.Case{Threads: 8, Nodes: 2}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

// TestSeedRobustness retrains with different seeds and checks the
// detector's verdicts are stable — the classifier must not be an artifact
// of one sampling realization.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("retraining is slow")
	}
	for _, seed := range []uint64{42, 1337} {
		tl, err := drbw.Train(drbw.Config{Quick: true, Window: 4096, Warmup: 2048, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sc, err := tl.Analyze("Streamcluster", drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Contended() {
			t.Errorf("seed %d: streamcluster not detected", seed)
		}
		sw, err := tl.Analyze("Swaptions", drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: seed + 2})
		if err != nil {
			t.Fatal(err)
		}
		if sw.Contended() {
			t.Errorf("seed %d: swaptions misdetected", seed)
		}
	}
}

// TestConcurrentAnalyze exercises the documented concurrency guarantee.
func TestConcurrentAnalyze(t *testing.T) {
	tl := sharedTool(t)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	detected := make([]bool, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := tl.Analyze("Streamcluster", drbw.Case{
				Input: "simLarge", Threads: 16, Nodes: 2, Seed: uint64(200 + i),
			})
			if err != nil {
				errs[i] = err
				return
			}
			detected[i] = rep.Contended()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
		if !detected[i] {
			t.Errorf("goroutine %d missed the contention", i)
		}
	}
}
